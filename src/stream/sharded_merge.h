// Sharded-merge ingestion: the second parallelism axis of the engine,
// orthogonal to column sharding (DESIGN.md §6). Instead of giving each
// worker a slice of the sketch's state columns, give each worker a slice of
// the UPDATE STREAM: it sketches its slice into a private zeroed clone
// (same seed, same shape), and a tree of MergeFrom calls combines the
// clones. Because every sketch is a linear function of the stream and
// MergeFrom is exact cell-wise field addition (wrapping int64 weights,
// mod-2^128 index sums, mod-p fingerprints -- all associative and
// commutative with no rounding), ANY merge order produces the bit-identical
// state the serial path would, for every thread count.
//
// The clones come from CloneEmpty(): same seed, shapes, and active sets,
// but zero cells allocated DIRECTLY (lazily-zeroed arena pages) -- never
// copy-construct-then-Clear, which would write the source's entire arena
// twice per worker before a single update lands. The merges themselves are
// sparse: each sketch tracks which (vertex, round) columns its stream slice
// actually touched, and MergeFrom adds only those (see
// connectivity/spanning_forest_sketch.h).
//
// This is the protocol of the Section 2 referee made local: worker = player,
// MergeFrom = the referee's summation. It is also the shape of distributed
// ingestion (each node sketches its shard, frames travel, a coordinator
// merges), which is why the same MergeFrom backs comm/simultaneous.
#ifndef GMS_STREAM_SHARDED_MERGE_H_
#define GMS_STREAM_SHARDED_MERGE_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/parallel.h"
#include "util/status.h"

namespace gms {

/// How many stream shards a sharded-merge ingest over `num_updates` updates
/// should actually use: never more workers than updates (an empty slice is
/// a wasted clone) and never more than the CPUs this process can run
/// (every extra shard costs a full private sketch arena AND a merge, so
/// oversubscription here is catastrophic rather than merely wasteful --
/// the old unclamped policy at 8 threads on 1 core ran 146x slower than
/// serial). Callers wanting the raw mechanism (tests, benches) can pass
/// an explicit shard count straight to ShardedMergeIngest.
inline size_t ShardedMergeShards(size_t threads, size_t num_updates) {
  return std::min({threads, num_updates, HardwareThreads()});
}

/// True when a Process(span) call should take the sharded-merge path:
/// opted in, a span at least as long as the requested thread complement
/// (a shorter span would split into degenerate shards of ~1 update, each
/// still paying a full private clone arena plus a merge -- strictly worse
/// than the serial column path it displaces), a split that actually
/// yields >= 2 shards under the policy above (this is what keeps the
/// guard in agreement with the ingest's own degenerate-split handling),
/// and not already inside a worker (a nested call ingests its slice
/// serially instead of recursing).
inline bool UseShardedMerge(const EngineParams& engine, size_t num_updates) {
  return engine.mode == IngestMode::kShardedMerge &&
         num_updates >= engine.threads &&
         ShardedMergeShards(engine.threads, num_updates) >= 2 &&
         !ThreadPool::InParallelRegion();
}

/// Ingest `updates` into *target via private per-worker clones + tree
/// merge. Sketch must provide CloneEmpty(), MergeFrom(), and
/// Process(std::span<const U>); the clones' Process calls run inside the
/// pool's parallel region, so their own engine dispatch degrades to the
/// serial column path automatically. Linearity lets shard 0 ingest straight
/// into *target even when it already carries state. A degenerate split
/// (max_shards or the span too small for 2 shards) ingests serially inside
/// a width-1 pool region -- same degradation, no recursion, never a crash.
template <typename Sketch, typename U>
void ShardedMergeIngest(Sketch* target, std::span<const U> updates,
                        size_t max_shards) {
  const size_t shards = std::min(max_shards, updates.size());
  if (shards < 2) {
    if (updates.empty()) return;
    ThreadPool::Shared().Run(1, [&](size_t) { target->Process(updates); });
    return;
  }
  std::vector<Sketch> privates;
  privates.reserve(shards - 1);
  for (size_t s = 1; s < shards; ++s) {
    privates.push_back(target->CloneEmpty());
  }
  ThreadPool::Shared().Run(shards, [&](size_t s) {
    ShardRange r = ShardOf(updates.size(), s, shards);
    if (r.begin >= r.end) return;
    Sketch& sk = s == 0 ? *target : privates[s - 1];
    sk.Process(updates.subspan(r.begin, r.end - r.begin));
  });
  // Tree merge: log2(shards) levels of pairwise MergeFrom, each level's
  // merges independent and fanned across the pool.
  std::vector<Sketch*> nodes;
  nodes.reserve(shards);
  nodes.push_back(target);
  for (auto& p : privates) nodes.push_back(&p);
  for (size_t stride = 1; stride < nodes.size(); stride *= 2) {
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t i = 0; i + stride < nodes.size(); i += 2 * stride) {
      pairs.emplace_back(i, i + stride);
    }
    ParallelFor(max_shards, pairs.size(), [&](size_t begin, size_t end) {
      for (size_t j = begin; j < end; ++j) {
        Status st = nodes[pairs[j].first]->MergeFrom(*nodes[pairs[j].second]);
        GMS_CHECK_MSG(st.ok(), "sharded-merge: clone refused to merge");
      }
    });
  }
}

}  // namespace gms

#endif  // GMS_STREAM_SHARDED_MERGE_H_
