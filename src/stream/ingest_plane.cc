#include "stream/ingest_plane.h"

namespace gms {

std::vector<VertexUpdate>& IngestPlane::RebuildScratch() {
  static thread_local std::vector<VertexUpdate> scratch;
  return scratch;
}

void IngestPlane::Process(std::span<const StreamUpdate> updates) {
  if (consumers_.empty() || updates.empty()) return;
  if (!gutters_.has_value()) {
    gutters_.emplace(n_, kDefaultGutterCapacity);
  }
  const Gutters::FlushFn flush = [this](VertexId v,
                                        std::vector<VertexUpdate>&& buf) {
    ApplyUpdateBatch(/*thr_id=*/0, v,
                     std::span<const VertexUpdate>(buf));
  };
  const EdgeCodec& codec = *codec_;
  for (const StreamUpdate& u : updates) {
    GMS_CHECK_MSG(u.edge.size() <= codec.max_rank(),
                  "hyperedge exceeds max_rank");
    const uint64_t route = DriverRouteMask(u.edge);
    if (route == 0) continue;  // no consumer wants it
    const PreparedCoord pc = PrepareCoord(codec.Encode(u.edge));
    const int64_t head = static_cast<int64_t>(u.edge.size()) - 1;
    for (size_t pos = 0; pos < u.edge.size(); ++pos) {
      // Section 4.1 incidence coefficients; the edge is sorted, so the
      // minimum endpoint is position 0.
      const int64_t coeff = (pos == 0 ? head : -1) * u.delta;
      gutters_->Append(u.edge[pos], VertexUpdate{pc, route, coeff}, flush);
    }
  }
  gutters_->FlushEpoch(flush);
}

}  // namespace gms
