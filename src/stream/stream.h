// The dynamic graph stream model (Section 2): the input is a sequence of
// hyperedge insertions and deletions; the final graph is whatever survives.
// Builders produce insert-only streams, streams with "churn" (edges inserted
// and later deleted, which defeats insert-only algorithms like the Eppstein
// et al. baseline), and adversarial delete-heavy patterns.
#ifndef GMS_STREAM_STREAM_H_
#define GMS_STREAM_STREAM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace gms {

struct StreamUpdate {
  Hyperedge edge;
  int delta = +1;  // +1 insert, -1 delete

  StreamUpdate() = default;
  StreamUpdate(Hyperedge e, int d) : edge(std::move(e)), delta(d) {}

  friend bool operator==(const StreamUpdate&, const StreamUpdate&) = default;
};

/// A materialized dynamic stream. Invariant (checked by Validate): the
/// multiplicity of every hyperedge stays in {0, 1} at every prefix.
class DynamicStream {
 public:
  DynamicStream() = default;
  explicit DynamicStream(std::vector<StreamUpdate> updates)
      : updates_(std::move(updates)) {}

  const std::vector<StreamUpdate>& updates() const { return updates_; }
  size_t size() const { return updates_.size(); }
  auto begin() const { return updates_.begin(); }
  auto end() const { return updates_.end(); }

  void Push(Hyperedge e, int delta) { updates_.emplace_back(std::move(e), delta); }

  /// True iff multiplicities stay in {0,1} throughout.
  bool Validate() const;

  /// The hypergraph defined by the stream (n vertices).
  Hypergraph Materialize(size_t n) const;

  // ---------- Builders ----------

  /// Insert-only stream of g's hyperedges in a seeded random order.
  static DynamicStream InsertOnly(const Hypergraph& g, uint64_t seed);
  static DynamicStream InsertOnly(const Graph& g, uint64_t seed);

  /// Stream whose final graph is g but which additionally inserts-and-later-
  /// deletes `decoys` extra hyperedges not in g (uniform r-subsets), all
  /// interleaved in a seeded random order that keeps multiplicities valid.
  /// Dense inputs may not have `decoys` distinct absent hyperedges, in which
  /// case the rejection sampler stops short; if `achieved_decoys` is
  /// non-null it receives the number of decoys actually placed, so callers
  /// sweeping churn can label their axes with the real value.
  static DynamicStream WithChurn(const Hypergraph& g, size_t decoys, size_t r,
                                 uint64_t seed,
                                 size_t* achieved_decoys = nullptr);
  static DynamicStream WithChurn(const Graph& g, size_t decoys, uint64_t seed,
                                 size_t* achieved_decoys = nullptr);

  /// Insert every edge of `full`, then delete those not in `final_graph`.
  /// This is the adversarial pattern of Theorem 5's INDEX reduction: commit
  /// to a superset first, carve the instance out with deletions.
  static DynamicStream InsertThenDeleteDown(const Hypergraph& full,
                                            const Hypergraph& final_graph,
                                            uint64_t seed);

 private:
  std::vector<StreamUpdate> updates_;
};

}  // namespace gms

#endif  // GMS_STREAM_STREAM_H_
