// The gutter driver: reader/applier-decoupled batched ingestion
// (DESIGN.md §11; third parallelism axis, IngestMode::kGutterDriver).
//
// Readers and appliers split the work of one Process(span) call:
//
//   reader r owns stream slice ShardOf(|updates|, r, readers). It encodes
//     and prepares each update ONCE (the codec rank, key fold, and
//     exponent reduction are shape-independent), asks the sketch for the
//     update's routing mask, and appends one compact VertexUpdate per
//     endpoint into that endpoint's gutter (stream/gutters.h). A full
//     gutter is pushed to the queue of the applier that owns the vertex;
//     at the end of each fixed-length epoch the reader flushes every
//     partial gutter in increasing vertex order (the deterministic
//     flush barrier), which also bounds reader memory by the epoch
//     length.
//
//   applier a owns vertex range ShardOf(n, a, appliers). It drains its
//     bounded queue and replays each batch over the vertex's contiguous
//     sketch block via ApplyUpdateBatch -- the block (all rounds of one
//     vertex) is kilobytes, so a batch of updates against it runs out of
//     cache instead of paying a DRAM round-trip per update like the
//     random-vertex column path does.
//
// Determinism: the final state is BIT-IDENTICAL to the serial per-update
// path for every (readers, appliers) setting. Every cell is a sum over
// exact field ops (wrapping int64 weights, mod-2^128 index sums,
// canonical mod-(2^61-1) fingerprints), all commutative and associative
// with no rounding, and the dirty/level summaries are monotone bitwise
// ORs -- so no interleaving of batches can change a single output bit.
// The vertex-order epoch flush additionally pins the hand-off order
// itself, so even schedule-sensitive observables (queue traffic, stats
// meters per epoch) are reproducible functions of the stream.
//
// Sketch concept (the unified mergeable-sketch API grows these members):
//   size_t n() const;
//   const EdgeCodec& codec() const;
//   uint64_t DriverRouteMask(const Hyperedge& e) const;   // 0 = skip update
//   void ApplyUpdateBatch(size_t thr_id, VertexId v,
//                         std::span<const VertexUpdate> batch);
//
// Vertex ownership makes the parallel apply safe without locks: all of a
// vertex's arena columns and (vertex-major) level-mask words are touched
// by exactly one applier. The one shared structure is the ROUND-major
// dirty bitmap, whose words pack 64 vertex ordinals; ApplyUpdateBatch
// marks those with a relaxed atomic OR (order-independent, hence still
// deterministic).
#ifndef GMS_STREAM_STREAM_DRIVER_H_
#define GMS_STREAM_STREAM_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/edge_codec.h"
#include "stream/gutters.h"
#include "stream/stream.h"
#include "util/check.h"
#include "util/parallel.h"

namespace gms {

/// Default entries per gutter before it auto-flushes. 64 entries make a
/// ~3.5 KiB batch: large enough to amortize one queue hand-off and to
/// reuse the hot level-0 cells of the target column several times, small
/// enough that per-reader buffer memory (n * capacity worst case) stays a
/// few percent of the arena it feeds.
inline constexpr size_t kDefaultGutterCapacity = 64;

/// Default reader epoch length, in stream updates. Larger epochs coalesce
/// more updates per vertex (fewer column walks per update); the cap keeps
/// a reader's resident buffered entries bounded by
/// epoch * max_rank * sizeof(VertexUpdate) regardless of stream length.
inline constexpr size_t kDefaultEpochUpdates = 1 << 18;

/// Default bound on queued batches per applier: enough to keep an applier
/// busy across reader stalls, small enough for backpressure to bound
/// in-flight memory.
inline constexpr size_t kDefaultQueueCapacity = 256;

struct GutterDriverParams {
  /// Applier threads; applier a exclusively owns ShardOf(n, a, appliers).
  size_t appliers = 1;
  /// Reader threads; reader r owns stream slice ShardOf(m, r, readers).
  size_t readers = 1;
  size_t gutter_capacity = kDefaultGutterCapacity;
  size_t epoch_updates = kDefaultEpochUpdates;
  size_t queue_capacity = kDefaultQueueCapacity;
  /// Test-only fault injection (testkit FaultHook): a flushed batch for
  /// vertex v with `size` entries is dropped WHOLE when this returns true,
  /// and DriverStats counts all `size` entries as lost -- simulating a
  /// batch-granular decode failure on the apply path.
  std::function<bool(VertexId, size_t)> drop_batch;
  /// Serving hook: invoked by a READER thread right after its deterministic
  /// epoch flush, with (reader id, stream updates that reader has consumed
  /// so far). This marks a reader-side boundary only -- the flushed batches
  /// are queued, not yet applied -- so it is an observability / pacing
  /// signal (the serving layer seals its own deltas; see src/serve/), not
  /// an applied-prefix barrier. May fire concurrently on different readers.
  std::function<void(size_t, uint64_t)> on_epoch;
};

/// Meters for one DriveStream call (summed over readers and appliers).
struct DriverStats {
  uint64_t updates = 0;          // stream updates consumed by readers
  uint64_t entries = 0;          // per-endpoint VertexUpdates buffered
  uint64_t batches = 0;          // gutters handed to appliers
  uint64_t epochs = 0;           // reader epoch flushes (incl. final partial)
  uint64_t dropped_batches = 0;  // batches withheld by drop_batch
  uint64_t dropped_updates = 0;  // entries lost to dropped batches (N per
                                 // batch, never 1)

  void Accumulate(const DriverStats& o) {
    updates += o.updates;
    entries += o.entries;
    batches += o.batches;
    epochs += o.epochs;
    dropped_batches += o.dropped_batches;
    dropped_updates += o.dropped_updates;
  }
};

/// owner_of[v] = the applier whose ShardOf(n, a, appliers) range contains
/// v (the ranges are floor-divided, so the closed-form inverse is
/// off-by-one-prone; one O(n) fill per drive is noise).
std::vector<uint32_t> BuildApplierOwnerMap(size_t n, size_t appliers);

/// True when a Process(span) call should take the gutter-driver path:
/// opted in and not already inside a parallel region (a nested call --
/// e.g. a sharded-merge clone's Process -- ingests serially instead of
/// recursing into a second pool occupation).
inline bool UseGutterDriver(const EngineParams& engine, size_t num_updates) {
  return engine.mode == IngestMode::kGutterDriver && num_updates > 0 &&
         !ThreadPool::InParallelRegion();
}

/// Resolve the engine knobs into driver params: `threads` is the applier
/// count (the scaling axis the bench sweeps); readers default to a
/// quarter of that (preparation is cheap next to cell application) and
/// are overridable via EngineParams::driver_readers.
inline GutterDriverParams DriverParamsFromEngine(const EngineParams& engine) {
  GutterDriverParams p;
  p.appliers = std::max<size_t>(1, engine.threads);
  p.readers = engine.driver_readers != 0
                  ? engine.driver_readers
                  : std::max<size_t>(1, p.appliers / 4);
  if (engine.driver_gutter_capacity != 0) {
    p.gutter_capacity = engine.driver_gutter_capacity;
  }
  return p;
}

/// Run the full reader/applier pipeline over `num_updates` records into
/// *sketch, pulling each record through `get`: a callable
///
///   const StreamUpdate& get(uint64_t j, StreamUpdate* scratch)
///
/// returning record j, either by reference into backing storage (span
/// sources ignore `scratch`) or by decoding into *scratch and returning
/// *scratch (disk sources; see workload/binary_stream.h). `get` is called
/// concurrently from several reader threads but never twice for the same
/// j, and each reader passes its own scratch -- so a decoding source needs
/// no locking. Blocks until every batch is applied; the sketch is then in
/// the exact state the serial per-update path would produce. Occupies the
/// shared pool with readers + appliers workers for the duration (nested
/// sketch dispatch inside degrades serial, like every other engine path).
template <typename Sketch, typename GetUpdate>
DriverStats DriveStreamRecords(Sketch* sketch, uint64_t num_updates,
                               GetUpdate&& get,
                               const GutterDriverParams& params) {
  DriverStats total;
  if (num_updates == 0) return total;
  const size_t n = sketch->n();
  const size_t appliers = std::max<size_t>(1, params.appliers);
  const size_t readers = std::max<size_t>(1, params.readers);
  const size_t gutter_cap =
      params.gutter_capacity != 0 ? params.gutter_capacity : size_t{1};
  const size_t epoch = params.epoch_updates != 0
                           ? params.epoch_updates
                           : kDefaultEpochUpdates;
  const size_t queue_cap =
      params.queue_capacity != 0 ? params.queue_capacity : size_t{1};
  const EdgeCodec& codec = sketch->codec();

  const std::vector<uint32_t> owner_of = BuildApplierOwnerMap(n, appliers);

  std::vector<std::unique_ptr<BatchQueue>> queues;
  queues.reserve(appliers);
  for (size_t a = 0; a < appliers; ++a) {
    queues.push_back(std::make_unique<BatchQueue>(queue_cap));
  }

  std::atomic<size_t> readers_left{readers};
  std::mutex stats_mu;

  auto reader_loop = [&](size_t r) {
    DriverStats local;
    const ShardRange slice = ShardOf(num_updates, r, readers);
    Gutters gutters(n, gutter_cap);
    StreamUpdate scratch;
    const Gutters::FlushFn flush = [&](VertexId v,
                                       std::vector<VertexUpdate>&& buf) {
      ++local.batches;
      queues[owner_of[v]]->Push(GutterBatch{v, std::move(buf)});
    };
    for (size_t begin = slice.begin; begin < slice.end; begin += epoch) {
      const size_t end = std::min(slice.end, begin + epoch);
      for (size_t j = begin; j < end; ++j) {
        const StreamUpdate& u = get(j, &scratch);
        GMS_CHECK_MSG(u.edge.size() <= codec.max_rank(),
                      "hyperedge exceeds max_rank");
        ++local.updates;
        const uint64_t route = sketch->DriverRouteMask(u.edge);
        if (route == 0) continue;  // e.g. kept by no subsample
        const PreparedCoord pc = PrepareCoord(codec.Encode(u.edge));
        const int64_t head = static_cast<int64_t>(u.edge.size()) - 1;
        for (size_t pos = 0; pos < u.edge.size(); ++pos) {
          // Section 4.1 incidence coefficients; the edge is sorted, so the
          // minimum endpoint is position 0.
          const int64_t coeff = (pos == 0 ? head : -1) * u.delta;
          ++local.entries;
          gutters.Append(u.edge[pos], VertexUpdate{pc, route, coeff}, flush);
        }
      }
      gutters.FlushEpoch(flush);
      ++local.epochs;
      if (params.on_epoch) {
        params.on_epoch(r, local.updates);
      }
    }
    if (readers_left.fetch_sub(1) == 1) {
      for (auto& q : queues) q->Close();
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    total.Accumulate(local);
  };

  auto applier_loop = [&](size_t a) {
    DriverStats local;
    GutterBatch batch;
    while (queues[a]->Pop(&batch)) {
      if (params.drop_batch &&
          params.drop_batch(batch.vertex, batch.entries.size())) {
        ++local.dropped_batches;
        local.dropped_updates += batch.entries.size();
        continue;
      }
      sketch->ApplyUpdateBatch(a, batch.vertex,
                               std::span<const VertexUpdate>(batch.entries));
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    total.Accumulate(local);
  };

  ThreadPool::Shared().Run(readers + appliers, [&](size_t s) {
    if (s < readers) {
      reader_loop(s);
    } else {
      applier_loop(s - readers);
    }
  });
  return total;
}

/// The in-memory source: drive a materialized update span through the
/// pipeline (the record getter is a span index).
template <typename Sketch>
DriverStats DriveStream(Sketch* sketch, std::span<const StreamUpdate> updates,
                        const GutterDriverParams& params) {
  return DriveStreamRecords(
      sketch, updates.size(),
      [updates](uint64_t j, StreamUpdate*) -> const StreamUpdate& {
        return updates[j];
      },
      params);
}

}  // namespace gms

#endif  // GMS_STREAM_STREAM_DRIVER_H_
