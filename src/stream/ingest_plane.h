// The shared ingestion plane (DESIGN.md §15): one encode/prepare/route
// pass fanning out to every registered sketch consumer.
//
// Every multi-sketch composition in the tree ingests the SAME updates into
// several linear sketches: the serving layer's forest/VC/skeleton engines,
// TwoEdgeConnect's two forest layers, ApproxMinCut's k = 1, 2, 4, ...
// skeleton ladder. Run independently, each consumer pays the full hot path
// -- EdgeCodec encoding, the PreparedCoord key fold + exponent reduction,
// gutter routing -- once per consumer. But all of that work is a function
// of the UPDATE alone, not of the sketch it lands in, so the plane does it
// exactly once and fans the resulting per-vertex VertexUpdate batches out
// to N consumers.
//
// Route-word packing: the driver's 64-bit route word becomes a shared
// resource. Consumer i claims bits [shift_i, shift_i + bits_i): plain
// sketches (forests, skeletons, sparsifiers, the apps) claim one bit,
// subsampled containers claim one bit per subsample (DriverRouteBits()).
// A reader evaluates every consumer's own DriverRouteMask once per update
// and packs the masks into one word; an update routed nowhere is skipped
// entirely. On apply, each consumer sees only its own bits, shifted back
// down to position 0 -- bit-identical to what a solo drive would deliver.
//
// Determinism: for each consumer, the set of entries delivered per vertex
// is EXACTLY the set a solo ingest would deliver (same PreparedCoord, same
// coefficient, same per-consumer route bits), and every sketch cell is a
// sum of commutative exact field ops while the dirty/level summaries are
// monotone ORs -- so the fan-out order across consumers cannot change a
// single output bit. Shared-plane frames are byte-identical to independent
// ingest for every readers x appliers split (tests/ingest_plane_test.cc).
//
// Contract for registered consumers (the driver-sketch concept plus two
// optional members):
//   size_t n() const;                       // must match across consumers
//   const EdgeCodec& codec() const;         // same (n, max_rank) domain
//   uint64_t DriverRouteMask(const Hyperedge&) const;  // 0 = skip
//   void ApplyUpdateBatch(size_t thr_id, VertexId v,
//                         std::span<const VertexUpdate> batch);
//   size_t DriverRouteBits() const;         // optional; default 1
//   bool DriverSupported() const;           // optional; default true
// A one-bit consumer may receive batches whose entries carry OTHER
// consumers' bits above bit 0 (the pass-through fast path); it must
// interpret only bit 0. Multi-bit consumers always receive rebuilt entries
// with their own bits shifted down to [0, bits).
//
// The plane itself models the driver-sketch concept, so DriveStream /
// DriveStreamRecords / DriveBinaryFileStream drive it unchanged for
// parallel ingestion; Process() is the inline serial path (reader loop +
// gutters + direct fan-out on the calling thread, safe inside parallel
// regions).
#ifndef GMS_STREAM_INGEST_PLANE_H_
#define GMS_STREAM_INGEST_PLANE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/edge_codec.h"
#include "stream/gutters.h"
#include "stream/stream.h"
#include "stream/stream_driver.h"
#include "util/check.h"

namespace gms {

class IngestPlane {
 public:
  IngestPlane() = default;

  // The plane holds raw consumer pointers and per-call scratch; copying it
  // would alias both.
  IngestPlane(const IngestPlane&) = delete;
  IngestPlane& operator=(const IngestPlane&) = delete;
  IngestPlane(IngestPlane&&) = default;
  IngestPlane& operator=(IngestPlane&&) = default;

  /// Register *sketch as a fan-out target. Returns false -- leaving the
  /// plane unchanged -- when the consumer cannot share this plane's single
  /// prepare pass: its codec domain (n, max_rank) differs from the first
  /// consumer's, its route bits would overflow the packed 64-bit word, or
  /// it reports DriverSupported() == false. Callers fall back to the
  /// consumer's own Process for the same updates. The pointer must outlive
  /// every subsequent Process/Drive call (or a Reset).
  template <typename Sketch>
  bool Add(Sketch* sketch) {
    GMS_CHECK_MSG(sketch != nullptr, "IngestPlane: null consumer");
    if constexpr (requires { sketch->DriverSupported(); }) {
      if (!sketch->DriverSupported()) return false;
    }
    size_t bits = 1;
    if constexpr (requires { sketch->DriverRouteBits(); }) {
      bits = sketch->DriverRouteBits();
    }
    if (bits == 0 || bits_used_ + bits > 64) return false;
    if (consumers_.empty()) {
      if (n_ != sketch->n()) gutters_.reset();
      n_ = sketch->n();
      codec_ = &sketch->codec();
    } else if (sketch->n() != n_ ||
               sketch->codec().max_rank() != codec_->max_rank()) {
      return false;
    }
    Consumer c;
    c.sketch = sketch;
    c.shift = static_cast<uint32_t>(bits_used_);
    c.bits = static_cast<uint32_t>(bits);
    c.route = [](const void* p, const Hyperedge& e) -> uint64_t {
      return static_cast<const Sketch*>(p)->DriverRouteMask(e);
    };
    c.apply = &ApplyThunk<Sketch>;
    consumers_.push_back(c);
    bits_used_ += bits;
    return true;
  }

  /// Drop every registered consumer (the per-vertex gutter buffers survive
  /// for reuse when the next consumer set has the same n). Call between
  /// chunks when the consumer pointers change.
  void Reset() {
    consumers_.clear();
    codec_ = nullptr;
    bits_used_ = 0;
  }

  size_t num_consumers() const { return consumers_.size(); }
  size_t route_bits_used() const { return bits_used_; }

  // --- Driver-sketch concept: DriveStream(&plane, ...) runs the full
  // reader/applier pipeline with ONE prepare pass for all consumers. ---

  size_t n() const {
    GMS_CHECK_MSG(!consumers_.empty(), "IngestPlane: no consumers");
    return n_;
  }
  const EdgeCodec& codec() const {
    GMS_CHECK_MSG(codec_ != nullptr, "IngestPlane: no consumers");
    return *codec_;
  }

  /// The packed word: each consumer's own mask, truncated to its claimed
  /// width and shifted into its bit range. Zero iff no consumer wants the
  /// update.
  uint64_t DriverRouteMask(const Hyperedge& e) const {
    uint64_t word = 0;
    for (const Consumer& c : consumers_) {
      const uint64_t mask = c.route(c.sketch, e) & WidthMask(c.bits);
      word |= mask << c.shift;
    }
    return word;
  }

  /// Fan one vertex batch out to every consumer, in registration order.
  /// Safe to call concurrently for distinct vertices (applier sharding):
  /// the rebuild scratch is thread-local.
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch) {
    for (const Consumer& c : consumers_) {
      c.apply(c.sketch, thr_id, v, batch, c.shift, c.bits);
    }
  }

  bool DriverSupported() const { return true; }

  /// Inline serial ingest: the driver's reader logic (one encode +
  /// PrepareCoord + packed route per update), per-vertex gutter
  /// coalescing, and direct batch fan-out, all on the calling thread -- no
  /// pool, no queues, safe inside a parallel region. Bit-identical to
  /// per-consumer serial ingest.
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream) {
    Process(std::span<const StreamUpdate>(stream.updates()));
  }

  /// Parallel ingest through the gutter driver (readers prepare once for
  /// ALL consumers; appliers own vertex shards across ALL consumers).
  DriverStats Drive(std::span<const StreamUpdate> updates,
                    const GutterDriverParams& params) {
    return DriveStream(this, updates, params);
  }

 private:
  struct Consumer {
    void* sketch = nullptr;
    uint32_t shift = 0;
    uint32_t bits = 1;
    uint64_t (*route)(const void*, const Hyperedge&) = nullptr;
    void (*apply)(void*, size_t, VertexId, std::span<const VertexUpdate>,
                  uint32_t, uint32_t) = nullptr;
  };

  static constexpr uint64_t WidthMask(uint32_t bits) {
    return bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  }

  /// The per-consumer batch rebuild scratch; thread-local so concurrent
  /// appliers (distinct thr_id, distinct vertices) never share it.
  static std::vector<VertexUpdate>& RebuildScratch();

  template <typename Sketch>
  static void ApplyThunk(void* p, size_t thr_id, VertexId v,
                         std::span<const VertexUpdate> batch, uint32_t shift,
                         uint32_t bits) {
    auto* sketch = static_cast<Sketch*>(p);
    const uint64_t mask = WidthMask(bits);
    if (bits == 1) {
      // Pass-through fast path: when every entry routes here (always true
      // for constant-mask consumers sharing a plane, since an entry routed
      // NOWHERE never reaches the gutters), hand the original batch over
      // without copying. The entries still carry other consumers' bits
      // above bit 0 -- the one-bit consumer contract says to ignore them.
      bool all = true;
      for (const VertexUpdate& u : batch) {
        if (((u.route >> shift) & 1) == 0) {
          all = false;
          break;
        }
      }
      if (all) {
        sketch->ApplyUpdateBatch(thr_id, v, batch);
        return;
      }
    }
    std::vector<VertexUpdate>& scratch = RebuildScratch();
    scratch.clear();
    for (const VertexUpdate& u : batch) {
      const uint64_t route = (u.route >> shift) & mask;
      if (route != 0) scratch.push_back(VertexUpdate{u.pc, route, u.coeff});
    }
    if (!scratch.empty()) {
      sketch->ApplyUpdateBatch(
          thr_id, v, std::span<const VertexUpdate>(scratch));
    }
  }

  size_t n_ = 0;
  const EdgeCodec* codec_ = nullptr;
  size_t bits_used_ = 0;
  std::vector<Consumer> consumers_;
  /// Reused across inline Process calls (the serving layer drives one
  /// plane per epoch chunk; re-allocating n gutter vectors per chunk would
  /// dominate small chunks).
  std::optional<Gutters> gutters_;
};

}  // namespace gms

#endif  // GMS_STREAM_INGEST_PLANE_H_
