#include "stream/stream.h"

#include <unordered_map>
#include <unordered_set>

#include "util/check.h"
#include "util/random.h"

namespace gms {

bool DynamicStream::Validate() const {
  std::unordered_map<Hyperedge, int, HyperedgeHasher> mult;
  for (const auto& u : updates_) {
    int& m = mult[u.edge];
    m += u.delta;
    if (m < 0 || m > 1) return false;
  }
  return true;
}

Hypergraph DynamicStream::Materialize(size_t n) const {
  std::unordered_map<Hyperedge, int, HyperedgeHasher> mult;
  for (const auto& u : updates_) mult[u.edge] += u.delta;
  Hypergraph g(n);
  for (const auto& [e, m] : mult) {
    GMS_CHECK_MSG(m == 0 || m == 1, "stream leaves non-0/1 multiplicity");
    if (m == 1) g.AddEdge(e);
  }
  return g;
}

DynamicStream DynamicStream::InsertOnly(const Hypergraph& g, uint64_t seed) {
  Rng rng(seed);
  std::vector<StreamUpdate> ups;
  ups.reserve(g.NumEdges());
  for (const auto& e : g.Edges()) ups.emplace_back(e, +1);
  Shuffle(ups, rng);
  return DynamicStream(std::move(ups));
}

DynamicStream DynamicStream::InsertOnly(const Graph& g, uint64_t seed) {
  return InsertOnly(Hypergraph::FromGraph(g), seed);
}

DynamicStream DynamicStream::WithChurn(const Hypergraph& g, size_t decoys,
                                       size_t r, uint64_t seed,
                                       size_t* achieved_decoys) {
  Rng rng(seed);
  size_t n = g.NumVertices();
  GMS_CHECK(r >= 2 && r <= n);
  // Sample decoy hyperedges disjoint from g's edge set and from each other
  // (a repeated decoy would break the 0/1 multiplicity invariant).
  std::vector<Hyperedge> decoy_edges;
  std::unordered_set<Hyperedge, HyperedgeHasher> decoy_seen;
  size_t attempts = 0;
  // Dense inputs may not have `decoys` distinct absent hyperedges; stop at
  // whatever the rejection sampler finds within the attempt budget.
  size_t max_attempts = 200 * (decoys + 1) + 10000;
  while (decoy_edges.size() < decoys && attempts < max_attempts) {
    ++attempts;
    std::vector<VertexId> vs;
    while (vs.size() < r) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      bool dup = false;
      for (VertexId w : vs) dup |= (w == v);
      if (!dup) vs.push_back(v);
    }
    Hyperedge e(std::move(vs));
    if (!g.HasEdge(e) && decoy_seen.insert(e).second) {
      decoy_edges.push_back(std::move(e));
    }
  }
  // Surface the achieved count: silently delivering fewer decoys than
  // requested would mislabel any axis swept over `decoys`.
  if (achieved_decoys != nullptr) *achieved_decoys = decoy_edges.size();

  // Build: real inserts (in random order) interleaved with decoy
  // insert/delete pairs. To keep multiplicities valid we emit each decoy's
  // insert before its delete by assigning two sorted random timestamps.
  struct Stamped {
    double t;
    StreamUpdate u;
  };
  std::vector<Stamped> stamped;
  for (const auto& e : g.Edges()) {
    stamped.push_back({rng.NextDouble(), StreamUpdate(e, +1)});
  }
  for (const auto& e : decoy_edges) {
    double t1 = rng.NextDouble(), t2 = rng.NextDouble();
    if (t1 > t2) std::swap(t1, t2);
    stamped.push_back({t1, StreamUpdate(e, +1)});
    stamped.push_back({t2, StreamUpdate(e, -1)});
  }
  std::sort(stamped.begin(), stamped.end(),
            [](const Stamped& a, const Stamped& b) { return a.t < b.t; });
  std::vector<StreamUpdate> ups;
  ups.reserve(stamped.size());
  for (auto& s : stamped) ups.push_back(std::move(s.u));
  return DynamicStream(std::move(ups));
}

DynamicStream DynamicStream::WithChurn(const Graph& g, size_t decoys,
                                       uint64_t seed,
                                       size_t* achieved_decoys) {
  return WithChurn(Hypergraph::FromGraph(g), decoys, 2, seed, achieved_decoys);
}

DynamicStream DynamicStream::InsertThenDeleteDown(const Hypergraph& full,
                                                  const Hypergraph& final_graph,
                                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<StreamUpdate> inserts, deletes;
  for (const auto& e : full.Edges()) {
    inserts.emplace_back(e, +1);
    if (!final_graph.HasEdge(e)) deletes.emplace_back(e, -1);
  }
  for (const auto& e : final_graph.Edges()) {
    GMS_CHECK_MSG(full.HasEdge(e), "final graph must be a subgraph of full");
  }
  Shuffle(inserts, rng);
  Shuffle(deletes, rng);
  std::vector<StreamUpdate> ups = std::move(inserts);
  ups.insert(ups.end(), deletes.begin(), deletes.end());
  return DynamicStream(std::move(ups));
}

}  // namespace gms
