#include "stream/gutters.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gms {

BatchQueue::BatchQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void BatchQueue::Push(GutterBatch&& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return queue_.size() < capacity_ || closed_; });
  GMS_CHECK_MSG(!closed_, "BatchQueue: push after close");
  queue_.push_back(std::move(batch));
  not_empty_.notify_one();
}

bool BatchQueue::Pop(GutterBatch* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  not_full_.notify_one();
  return true;
}

void BatchQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
}

Gutters::Gutters(size_t n, size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), buffers_(n) {}

void Gutters::Append(VertexId v, const VertexUpdate& entry,
                     const FlushFn& flush) {
  std::vector<VertexUpdate>& buf = buffers_[v];
  if (buf.empty()) {
    if (buf.capacity() == 0) buf.reserve(capacity_);
    // A gutter that auto-flushed and refilled within the epoch lands on
    // the touched list twice; FlushEpoch dedups after sorting.
    touched_.push_back(v);
  }
  buf.push_back(entry);
  if (buf.size() >= capacity_) {
    std::vector<VertexUpdate> full;
    full.reserve(capacity_);
    std::swap(buf, full);
    flush(v, std::move(full));
  }
}

void Gutters::FlushEpoch(const FlushFn& flush) {
  std::sort(touched_.begin(), touched_.end());
  for (size_t i = 0; i < touched_.size(); ++i) {
    const VertexId v = touched_[i];
    if (i > 0 && touched_[i - 1] == v) continue;
    std::vector<VertexUpdate>& buf = buffers_[v];
    if (buf.empty()) continue;  // auto-flushed, never refilled
    std::vector<VertexUpdate> out(std::move(buf));
    buf.clear();
    flush(v, std::move(out));
  }
  touched_.clear();
}

}  // namespace gms
