// Text I/O for graphs, hypergraphs and dynamic streams.
//
// Stream format ("gms stream", one record per line):
//   n <num_vertices>           header, required first
//   + v1 v2 [v3 ...]           hyperedge insertion
//   - v1 v2 [v3 ...]           hyperedge deletion
//   # anything                 comment
// Edge-list format for static (hyper)graphs is the same without +/- (every
// line inserts).
#ifndef GMS_STREAM_IO_H_
#define GMS_STREAM_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "stream/stream.h"
#include "util/status.h"

namespace gms {

/// Parse a dynamic stream. Returns the declared vertex count and updates.
struct ParsedStream {
  size_t n = 0;
  DynamicStream stream;
};
Result<ParsedStream> ReadStream(std::istream& in);
Result<ParsedStream> ReadStreamFromString(const std::string& text);

/// Parse a static hypergraph (edge-list lines, `n` header required).
Result<Hypergraph> ReadHypergraph(std::istream& in);
Result<Hypergraph> ReadHypergraphFromString(const std::string& text);

/// Serialize.
std::string WriteStream(size_t n, const DynamicStream& stream);
std::string WriteHypergraph(const Hypergraph& g);

}  // namespace gms

#endif  // GMS_STREAM_IO_H_
