// Greedy delta-debugging stream shrinker: given a dynamic stream on which a
// caller-supplied predicate reproduces a failure, find a (locally) minimal
// sub-stream that still reproduces it. Failure reports then ship a
// five-edge repro instead of a five-thousand-update churn schedule.
//
// The unit of removal is a hyperedge GROUP -- every update touching one
// hyperedge -- because removing a whole group preserves the stream
// invariant (per-edge multiplicity in {0,1} at every prefix) by
// construction, so every candidate the shrinker proposes is a valid stream.
//
// Passes, each greedy and re-run to a fixed point within the step budget:
//   1. ddmin over groups: remove chunks of 1/2, 1/4, ... of the groups.
//   2. churn flattening: replace a surviving group's updates with its net
//      effect (insert once or nothing), removing decoy insert+delete pairs.
//   3. vertex-range reduction: drop groups touching the top half of the
//      vertex range and shrink n, repeatedly, then tighten n to the maximum
//      vertex actually used.
#ifndef GMS_TESTKIT_SHRINK_H_
#define GMS_TESTKIT_SHRINK_H_

#include <cstddef>
#include <functional>

#include "stream/stream.h"

namespace gms {
namespace testkit {

/// Returns true iff the failure still reproduces on (n, stream).
using FailurePredicate =
    std::function<bool(size_t n, const DynamicStream& stream)>;

struct ShrinkResult {
  DynamicStream stream;   // minimized failing stream
  size_t n = 0;           // minimized vertex count
  size_t distinct_edges = 0;  // hyperedges appearing in `stream`
  size_t predicate_calls = 0;
  bool budget_exhausted = false;
};

/// Minimize (n, failing) under `still_fails`. The input MUST fail the
/// predicate (CHECK-enforced: a shrinker fed a passing input would
/// "minimize" it to the empty stream). `max_predicate_calls` bounds total
/// work; the result is the best stream found when the budget runs out.
ShrinkResult ShrinkStream(size_t n, const DynamicStream& failing,
                          const FailurePredicate& still_fails,
                          size_t max_predicate_calls = 2000);

}  // namespace testkit
}  // namespace gms

#endif  // GMS_TESTKIT_SHRINK_H_
