// Structure-aware stream generation for tests, fuzzers, and benches.
//
// A StreamSpec names one dynamic-stream instance completely: a seeded graph
// or hypergraph family, its parameters, and a churn schedule. Build() is a
// pure function of the spec, so any failing trial anywhere in the suite is
// reproduced by the ONE LINE that ToString() prints (Parse() inverts it).
// Every random family routes through src/graph/generators.h; this header
// adds no new randomness of its own.
#ifndef GMS_TESTKIT_STREAM_SPEC_H_
#define GMS_TESTKIT_STREAM_SPEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/hypergraph.h"
#include "stream/stream.h"
#include "util/status.h"

namespace gms {
namespace testkit {

/// Final-graph families. Wire-stable names (see FamilyName): append only.
enum class Family : uint8_t {
  kPath = 0,            // PathGraph(n)
  kCycle,               // CycleGraph(n)
  kRandomTree,          // RandomTree(n, gseed)
  kErdosRenyi,          // ErdosRenyi(n, p, gseed)
  kGnm,                 // Gnm(n, m, gseed)
  kExpander,            // UnionOfHamiltonianCycles(n, k, gseed)
  kPlantedSeparator,    // PlantedSeparator(n, k, gseed); kappa = k exactly
  kHyperCycle,          // HyperCycle(n, rank)
  kRandomUniform,       // RandomUniformHypergraph(n, m, rank, gseed)
  kRandomHypergraph,    // RandomHypergraph(n, m, rank_min, rank, gseed)
  kPlantedHyperSeparator,  // PlantedHypergraphSeparator(n, k, rank, gseed)
  kPlantedHyperCut,        // PlantedHypergraphCut(n, rank, k, m, gseed)
  kRmat,                   // RmatGraph(n, m, gseed): power-law / Kronecker
  kRoadLike,               // RoadNetwork(n, m shortcuts, gseed)
  kTemporalChurn,          // sliding-window Gnm replay; see Build() -- this
                           // family OWNS its stream schedule (the churn
                           // field is ignored): insert `m + decoys` edges
                           // in seeded order, deleting edge i-m right
                           // after inserting edge i, so the final graph is
                           // the last m edges and `decoys` edges expired.
};

/// Churn schedules layered over the family's final graph.
enum class Churn : uint8_t {
  kInsertOnly = 0,  // DynamicStream::InsertOnly(final, sseed)
  kWithChurn,       // `decoys` extra insert+delete pairs interleaved
  kDeleteDown,      // insert a superset (final + `decoys` extras), delete down
};

const char* FamilyName(Family f);
const char* ChurnName(Churn c);

/// Everything Build() produces: the stream, its final graph, and whatever
/// planted ground truth the family carries (so oracles need not re-derive
/// it with exponential algorithms).
struct BuiltStream {
  Hypergraph final_graph;
  DynamicStream stream;
  size_t max_rank = 2;
  /// Family ground truth (empty/zero when the family plants nothing).
  std::vector<VertexId> separator;  // planted vertex separator
  size_t planted_cut = 0;           // planted min-cut size (0 = none)
};

/// One fully-specified dynamic-stream instance.
struct StreamSpec {
  Family family = Family::kErdosRenyi;
  uint32_t n = 16;
  uint32_t m = 0;         // edge count (kGnm, kRandomUniform, kRandomHypergraph,
                          // edges-per-side for kPlantedHyperCut)
  uint32_t k = 2;         // separator size / planted cut / Hamiltonian cycles
  uint32_t rank = 2;      // hyperedge cardinality (max for kRandomHypergraph)
  uint32_t rank_min = 2;  // kRandomHypergraph only
  double p = 0.2;         // kErdosRenyi only
  uint64_t gseed = 1;     // family randomness
  Churn churn = Churn::kInsertOnly;
  uint32_t decoys = 0;    // kWithChurn pairs / kDeleteDown extras
  uint64_t sseed = 1;     // stream-order randomness

  /// Materialize the spec. Deterministic: equal specs build bit-equal
  /// streams. The result's stream always passes DynamicStream::Validate().
  BuiltStream Build() const;

  /// One-line self-describing serialization, e.g.
  ///   gms-spec-v1;family=planted_separator;n=24;k=3;gseed=7;churn=insert_only;sseed=9
  /// Fields at their defaults are still printed so the line is complete.
  std::string ToString() const;

  /// Inverse of ToString. Unknown keys, bad values, and version mismatches
  /// return InvalidArgument.
  static Result<StreamSpec> Parse(std::string_view line);

  /// The spec with all three seeds re-derived from (this, trial): trial i of
  /// a sweep. Deterministic and collision-free across trials.
  StreamSpec WithTrial(uint64_t trial) const;

  friend bool operator==(const StreamSpec&, const StreamSpec&) = default;
};

/// The default spec sweep grid: one representative spec per family x churn
/// combination at small n, used by the differential-oracle matrix test and
/// the corpus generator. Deterministic order.
std::vector<StreamSpec> DefaultSpecGrid();

}  // namespace testkit
}  // namespace gms

#endif  // GMS_TESTKIT_STREAM_SPEC_H_
