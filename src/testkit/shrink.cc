#include "testkit/shrink.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace gms {
namespace testkit {

namespace {

/// The stream regrouped by hyperedge: group i is every update of edge i, in
/// stream order. Candidate streams are assembled from a subset of groups by
/// replaying the original update order restricted to kept edges, so
/// relative update order (and hence validity) is preserved.
struct Grouped {
  std::vector<Hyperedge> edges;                     // group id -> edge
  std::unordered_map<Hyperedge, size_t, HyperedgeHasher> group_of;
  std::vector<StreamUpdate> updates;                // original order
  std::vector<size_t> update_group;                 // per update
};

Grouped GroupByEdge(const DynamicStream& stream) {
  Grouped g;
  g.updates.assign(stream.begin(), stream.end());
  g.update_group.reserve(g.updates.size());
  for (const StreamUpdate& u : g.updates) {
    auto [it, inserted] = g.group_of.try_emplace(u.edge, g.edges.size());
    if (inserted) g.edges.push_back(u.edge);
    g.update_group.push_back(it->second);
  }
  return g;
}

DynamicStream Assemble(const Grouped& g, const std::vector<bool>& keep_group,
                       const std::vector<bool>& flatten_group) {
  DynamicStream out;
  // Flattened groups contribute their NET effect: one insert at the
  // position of their first update if the deltas sum to +1, nothing if 0.
  std::vector<bool> emitted(g.edges.size(), false);
  std::vector<int> net(g.edges.size(), 0);
  for (size_t i = 0; i < g.updates.size(); ++i) {
    net[g.update_group[i]] += g.updates[i].delta;
  }
  for (size_t i = 0; i < g.updates.size(); ++i) {
    size_t grp = g.update_group[i];
    if (!keep_group[grp]) continue;
    if (!flatten_group[grp]) {
      out.Push(g.updates[i].edge, g.updates[i].delta);
    } else if (!emitted[grp] && net[grp] > 0) {
      emitted[grp] = true;
      out.Push(g.updates[i].edge, +1);
    }
  }
  return out;
}

size_t CountKept(const std::vector<bool>& keep) {
  size_t c = 0;
  for (bool b : keep) c += b;
  return c;
}

}  // namespace

ShrinkResult ShrinkStream(size_t n, const DynamicStream& failing,
                          const FailurePredicate& still_fails,
                          size_t max_predicate_calls) {
  ShrinkResult result;
  result.n = n;

  size_t calls = 0;
  auto check = [&](size_t cand_n, const DynamicStream& cand) {
    if (calls >= max_predicate_calls) return false;
    ++calls;
    return still_fails(cand_n, cand);
  };

  GMS_CHECK_MSG(still_fails(n, failing),
                "ShrinkStream: the input does not reproduce the failure");
  ++calls;

  Grouped g = GroupByEdge(failing);
  std::vector<bool> keep(g.edges.size(), true);
  std::vector<bool> flatten(g.edges.size(), false);
  size_t best_n = n;

  // Pass 1: ddmin over groups. Chunks shrink from half the live set down to
  // single groups; any successful removal restarts at the (new) half size.
  bool removed_any = true;
  while (removed_any && calls < max_predicate_calls) {
    removed_any = false;
    std::vector<size_t> live;
    for (size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) live.push_back(i);
    }
    for (size_t chunk = std::max<size_t>(live.size() / 2, 1); chunk >= 1;
         chunk /= 2) {
      for (size_t start = 0;
           start < live.size() && calls < max_predicate_calls;
           start += chunk) {
        size_t end = std::min(start + chunk, live.size());
        bool any_kept = false;
        for (size_t i = start; i < end; ++i) any_kept |= keep[live[i]];
        if (!any_kept) continue;
        std::vector<bool> cand = keep;
        for (size_t i = start; i < end; ++i) cand[live[i]] = false;
        if (check(best_n, Assemble(g, cand, flatten))) {
          keep = std::move(cand);
          removed_any = true;
        }
      }
      if (chunk == 1) break;
    }
  }

  // Pass 2: churn flattening. Collapse each surviving group to its net
  // effect (kills decoy insert+delete pairs and redundant re-insertions).
  for (size_t i = 0; i < keep.size() && calls < max_predicate_calls; ++i) {
    if (!keep[i] || flatten[i]) continue;
    std::vector<bool> cand = flatten;
    cand[i] = true;
    if (check(best_n, Assemble(g, keep, cand))) flatten = std::move(cand);
  }

  // Pass 3: vertex-range reduction. Halve the id range while the failure
  // survives with every group above the cut removed, then tighten n to the
  // maximum id actually used.
  while (best_n > 2 && calls < max_predicate_calls) {
    size_t half = (best_n + 1) / 2;
    std::vector<bool> cand = keep;
    for (size_t i = 0; i < g.edges.size(); ++i) {
      if (!cand[i]) continue;
      for (VertexId v : g.edges[i]) {
        if (v >= half) cand[i] = false;
      }
    }
    if (CountKept(cand) == 0) break;
    if (!check(half, Assemble(g, cand, flatten))) break;
    keep = std::move(cand);
    best_n = half;
  }
  VertexId max_used = 0;
  bool any = false;
  for (size_t i = 0; i < g.edges.size(); ++i) {
    if (!keep[i]) continue;
    any = true;
    for (VertexId v : g.edges[i]) max_used = std::max(max_used, v);
  }
  if (any) {
    size_t tight = static_cast<size_t>(max_used) + 1;
    if (tight < best_n && check(tight, Assemble(g, keep, flatten))) {
      best_n = tight;
    }
  }

  result.stream = Assemble(g, keep, flatten);
  result.n = best_n;
  result.distinct_edges = CountKept(keep);
  // Flattened-to-nothing groups are kept in `keep` but emit no updates;
  // count edges that actually appear.
  std::unordered_map<Hyperedge, size_t, HyperedgeHasher> seen;
  for (const StreamUpdate& u : result.stream) seen.try_emplace(u.edge, 0);
  result.distinct_edges = seen.size();
  result.predicate_calls = calls;
  result.budget_exhausted = calls >= max_predicate_calls;
  return result;
}

}  // namespace testkit
}  // namespace gms
