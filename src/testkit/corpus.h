// Seed-corpus construction and the byte<->stream codec shared by the fuzz
// harnesses (fuzz/), the corpus generator tool, and the smoke tests.
//
// Two corpora:
//   wire/   -- valid serialized frames of every FrameType (the starting
//              points from which the deserializer fuzzers mutate), plus a
//              few deliberately broken variants so even the unmutated
//              corpus exercises rejection paths.
//   stream/ -- byte-encoded dynamic streams for the ingestion fuzzer.
//
// The stream byte format is designed for fuzzing, not storage: any byte
// string decodes to SOME bounded instance (no parse failures for the
// fuzzer to get stuck on), small inputs decode to small instances, and
// every field is byte-aligned so mutations act locally.
//
//   byte 0:      n = 2 + (b0 % 30)            -- vertex count in [2, 31]
//   byte 1:      max_rank = 2 + (b1 % 3)      -- in [2, 4]
//   then repeating update records until the buffer ends:
//     byte:      op -- bit 0: delta (+1 / -1); bits 1..7: rank selector
//     r bytes:   vertex ids, each taken mod n
//   Records whose vertices collapse below 2 distinct ids are skipped.
//   At most kMaxFuzzUpdates records decode (inputs are fuzz-sized).
#ifndef GMS_TESTKIT_CORPUS_H_
#define GMS_TESTKIT_CORPUS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stream/stream.h"
#include "util/status.h"

namespace gms {
namespace testkit {

inline constexpr size_t kMaxFuzzUpdates = 512;

struct DecodedFuzzStream {
  size_t n = 2;
  size_t max_rank = 2;
  /// NOT validated: multiplicities may go negative or above one. The linear
  /// sketches must tolerate that without crashing; DynamicStream::Validate
  /// would reject it, which is exactly why the fuzzer bypasses it.
  std::vector<StreamUpdate> updates;
};

/// Total function: every byte string decodes (empty input -> empty stream).
DecodedFuzzStream DecodeFuzzStream(std::span<const uint8_t> bytes);

/// Inverse-ish: encode a valid stream into the fuzz byte format. Round
/// trip holds when n <= 31, max_rank <= 4, and ids fit the byte encoding.
std::vector<uint8_t> EncodeFuzzStream(size_t n, size_t max_rank,
                                      const DynamicStream& stream);

/// One named corpus entry.
struct CorpusEntry {
  std::string name;
  std::vector<uint8_t> bytes;
};

/// Valid (and a few deliberately corrupted) serialized frames of all six
/// sketch types over small processed streams. Deterministic.
std::vector<CorpusEntry> WireSeedCorpus();

/// Byte-encoded streams drawn from the DefaultSpecGrid families.
std::vector<CorpusEntry> StreamSeedCorpus();

/// Write a corpus under dir/<entry.name> (dir is created). Returns the
/// number of files written or a Status on I/O failure.
Result<size_t> WriteCorpusDir(const std::string& dir,
                              const std::vector<CorpusEntry>& entries);

}  // namespace testkit
}  // namespace gms

#endif  // GMS_TESTKIT_CORPUS_H_
