// Differential oracles: replay one stream through a sketch pipeline AND the
// matching exact offline algorithm, and report agreement. A sweep runs one
// oracle over many derived trials and summarizes the observed success rate
// with a Wilson score interval, so suites can assert statistical
// consistency with the paper's whp bounds instead of hard-coding "seed 7
// happens to work".
//
// Oracle matrix (sketch side vs exact side, both over the SAME final graph):
//   kComponents        ConnectivityQuery            NumComponents (BFS)
//   kSpanningNoGhost   SpanningGraph() edges        subset-of-input check
//   kEdgeConnectivity  EdgeConnectivityQuery        HypergraphMinCut
//                                                   (Queyranne/Klimmek-Wagner)
//   kLightRecovery     LightRecoverySketch          OfflineLightEdges
//   kVcQuery           VcQuerySketch (graphs only)  IsConnectedExcluding
//                                                   (Even-Tarjan semantics)
//   kHyperVcQuery      HyperVcQuerySketch           IsConnectedExcluding
//   kSparsifier        HypergraphSparsifierSketch   cut_eval sampled cuts
//   kL0Sampler         L0Sampler over the edge      support membership
//                      codec domain
//   kTwoEdgeConnect    apps::TwoEdgeConnect         per-edge-removal brute
//                                                   bridges + components
//   kApproxMinCut      apps::ApproxMinCut           HypergraphMinCut[Brute]
//   kBridgeQuery       serve::SketchServer          per-edge-removal brute
//                      kIsBridge over wire frames   bridges (graphs only)
#ifndef GMS_TESTKIT_ORACLE_H_
#define GMS_TESTKIT_ORACLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stream/stream.h"
#include "testkit/stream_spec.h"
#include "util/status.h"

namespace gms {
namespace testkit {

enum class OracleKind : uint8_t {
  kComponents = 0,
  kSpanningNoGhost,
  kEdgeConnectivity,
  kLightRecovery,
  kVcQuery,
  kHyperVcQuery,
  kSparsifier,
  kL0Sampler,
  /// apps::TwoEdgeConnect (forest peeling) vs per-edge-removal brute
  /// bridges + exact component count of the final graph.
  kTwoEdgeConnect,
  /// apps::ApproxMinCut (k-skeleton doubling, k_cap = opt.k) vs exact
  /// global min cut (brute enumeration for small n, Queyranne otherwise);
  /// exact answers must also ship a shore achieving the value.
  kApproxMinCut,
  /// serve::SketchServer kIsBridge through the WIRE protocol (encode
  /// request, HandleFrame, decode response) vs brute bridges. Graph
  /// streams only (bridge queries address edges as (u, v) pairs).
  kBridgeQuery,
};

const char* OracleName(OracleKind k);

/// All oracle kinds, in enum order (the sweep matrix iterates this).
std::vector<OracleKind> AllOracles();

/// Test-only fault injection: updates for which `drop_update` returns true
/// are silently withheld from the SKETCH side only (the exact side always
/// sees the true stream). This simulates the one bug class a linear-sketch
/// library must never have -- a lost or misrouted update -- and exists so
/// the shrinker has a reproducible synthetic bug to minimize.
struct FaultHook {
  std::function<bool(const StreamUpdate&)> drop_update;
  /// Batched-apply fault injection for driver-mode ingestion: a gutter
  /// batch (vertex, entry count) for which this returns true is withheld
  /// whole. The driver's unit of loss is the batch, so this is where a
  /// decode/transport failure on the batched path is simulated.
  std::function<bool(VertexId, size_t)> drop_batch;
  /// Updates withheld from the sketch side so far. A dropped BATCH adds
  /// its full entry count -- losing a gutter of N coalesced updates loses
  /// N measurements, not 1 (counting batches as single losses understated
  /// the injected damage and made loss-rate assertions vacuous). Atomic
  /// because the driver's appliers probe DropsBatch concurrently.
  mutable std::atomic<size_t> lost_updates{0};

  FaultHook() = default;
  FaultHook(const FaultHook& other)
      : drop_update(other.drop_update),
        drop_batch(other.drop_batch),
        lost_updates(other.lost_updates.load()) {}
  FaultHook& operator=(const FaultHook& other) {
    drop_update = other.drop_update;
    drop_batch = other.drop_batch;
    lost_updates = other.lost_updates.load();
    return *this;
  }

  bool Drops(const StreamUpdate& u) const {
    if (drop_update && drop_update(u)) {
      lost_updates.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
  bool DropsBatch(VertexId v, size_t entries) const {
    if (drop_batch && drop_batch(v, entries)) {
      lost_updates.fetch_add(entries, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

struct OracleOptions {
  /// Connectivity cap / separator budget / peeling threshold, per oracle.
  size_t k = 2;
  /// Random removal-set queries per VC trial (on top of any planted
  /// separator the family provides).
  size_t num_queries = 4;
  /// Explicit subsample count for the VC sketches (0 = half the paper's R,
  /// matching the sized-down constants the unit suites use).
  size_t explicit_r = 0;
  /// Sparsifier: sketch epsilon and accepted verification epsilon (the
  /// Theorem 19 guarantee is (1+eps)^levels, hence the looser check bound).
  double sparsifier_epsilon = 1.0;
  double verify_epsilon = 1.5;
  size_t sparsifier_levels = 8;
  /// Sparsifier peeling threshold (the unit suites' empirically reliable
  /// small-n setting; 0 would resolve the paper's much larger formula).
  size_t sparsifier_k = 10;
  /// Ingest the kComponents sketch through the gutter driver (2 appliers,
  /// 1 reader) instead of per-update calls. Batch faults (`fault.drop_batch`)
  /// only fire on this path; per-update faults apply on both.
  bool driver_ingest = false;
  FaultHook fault;
};

struct OracleOutcome {
  /// False when the oracle does not apply to the instance (e.g. kVcQuery on
  /// a hypergraph family); such trials are excluded from sweep counts.
  bool applicable = true;
  /// Sketch answer matched exact ground truth.
  bool agreed = true;
  /// The sketch reported an explicit DecodeFailure instead of an answer.
  /// Counted against the success rate, but distinguished from `!agreed`
  /// because an honest failure Status is the DESIGNED whp failure mode,
  /// while a silent wrong answer is a bug.
  bool decode_failure = false;
  std::string detail;  // populated when !agreed or decode_failure

  bool Succeeded() const { return agreed && !decode_failure; }
};

/// Core entry point: run one oracle over a materialized stream. `n` and
/// `max_rank` bound the instance; `truth` is the stream's final graph
/// (callers that already materialized it pass it to avoid recomputation).
OracleOutcome RunOracleOnStream(OracleKind kind, size_t n, size_t max_rank,
                                const DynamicStream& stream,
                                const Hypergraph& truth,
                                const std::vector<VertexId>& planted_separator,
                                uint64_t sketch_seed,
                                const OracleOptions& opt = OracleOptions());

/// Convenience: Build() the spec and run. The outcome's detail embeds
/// spec.ToString() so a failure is a one-line repro.
OracleOutcome RunOracle(OracleKind kind, const StreamSpec& spec,
                        uint64_t sketch_seed,
                        const OracleOptions& opt = OracleOptions());

// ---------- Statistical sweeps ----------

/// 95% (by default) Wilson score interval for a binomial proportion:
/// the interval of true success probabilities p for which the observed
/// (successes, trials) is within z standard errors of expectation. Unlike
/// the normal approximation it stays inside [0, 1] and behaves at
/// successes == trials, which is the common case here.
struct WilsonInterval {
  double lo = 0;
  double hi = 1;
  bool Contains(double prob) const { return lo <= prob && prob <= hi; }
};
WilsonInterval Wilson(size_t successes, size_t trials, double z = 1.959964);

struct SweepResult {
  size_t trials = 0;            // applicable trials only
  size_t successes = 0;         // agreed, no decode failure
  size_t decode_failures = 0;   // honest failure Status
  size_t disagreements = 0;     // silent wrong answers (bugs)
  /// One-line repro (spec + oracle + seed) for every unsuccessful trial.
  std::vector<std::string> failures;

  WilsonInterval interval() const { return Wilson(successes, trials); }
  /// True iff the observed rate is statistically consistent with success
  /// probability >= min_success at the interval's confidence: the data does
  /// not refute the configured bound.
  bool ConsistentWith(double min_success) const {
    return interval().hi >= min_success;
  }
};

/// Run `kind` on `base.WithTrial(t)` for t in [0, trials), with the sketch
/// seed forked independently per trial. Inapplicable trials are skipped.
SweepResult RunSweep(OracleKind kind, const StreamSpec& base, size_t trials,
                     const OracleOptions& opt = OracleOptions());

}  // namespace testkit
}  // namespace gms

#endif  // GMS_TESTKIT_ORACLE_H_
