#include "testkit/corpus.h"

#include <cstdio>
#include <filesystem>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "graph/generators.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "testkit/stream_spec.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace testkit {

DecodedFuzzStream DecodeFuzzStream(std::span<const uint8_t> bytes) {
  DecodedFuzzStream out;
  if (bytes.size() < 2) return out;
  out.n = 2 + bytes[0] % 30;
  out.max_rank = 2 + bytes[1] % 3;
  size_t pos = 2;
  while (pos < bytes.size() && out.updates.size() < kMaxFuzzUpdates) {
    uint8_t op = bytes[pos++];
    int delta = (op & 1) ? +1 : -1;
    size_t r = out.max_rank <= 2
                   ? 2
                   : 2 + (static_cast<size_t>(op >> 1) % (out.max_rank - 1));
    if (pos + r > bytes.size()) break;
    std::vector<VertexId> vs;
    vs.reserve(r);
    for (size_t i = 0; i < r; ++i) {
      VertexId v = static_cast<VertexId>(bytes[pos++] % out.n);
      bool dup = false;
      for (VertexId w : vs) dup |= w == v;
      if (!dup) vs.push_back(v);
    }
    if (vs.size() < 2) continue;  // collapsed below a valid hyperedge
    out.updates.emplace_back(Hyperedge(std::move(vs)), delta);
  }
  return out;
}

std::vector<uint8_t> EncodeFuzzStream(size_t n, size_t max_rank,
                                      const DynamicStream& stream) {
  std::vector<uint8_t> out;
  out.reserve(2 + stream.size() * (max_rank + 1));
  out.push_back(static_cast<uint8_t>((n - 2) % 30));
  out.push_back(static_cast<uint8_t>((max_rank - 2) % 3));
  for (const StreamUpdate& u : stream) {
    uint8_t op = static_cast<uint8_t>((u.edge.size() - 2) << 1);
    if (u.delta > 0) op |= 1;
    out.push_back(op);
    for (VertexId v : u.edge) out.push_back(static_cast<uint8_t>(v));
  }
  return out;
}

std::vector<CorpusEntry> WireSeedCorpus() {
  std::vector<CorpusEntry> entries;
  auto add = [&entries](const char* name, std::vector<uint8_t> bytes) {
    entries.push_back({name, std::move(bytes)});
  };

  Graph g = ErdosRenyi(10, 0.3, 41);
  Hypergraph h = RandomUniformHypergraph(10, 14, 3, 42);

  {
    L0Sampler sampler(1000, SketchConfig::Light(), 3);
    for (int i = 0; i < 20; ++i) sampler.Update(static_cast<u128>(i * 37), +1);
    std::vector<uint8_t> bytes;
    sampler.Serialize(&bytes);
    add("l0_sampler.bin", bytes);
    // Truncation and single-byte corruption variants keep the rejection
    // paths in the unmutated smoke run.
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + bytes.size() / 2);
    add("l0_sampler_truncated.bin", truncated);
    std::vector<uint8_t> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    add("l0_sampler_corrupt.bin", flipped);
  }
  {
    SpanningForestSketch sketch(10, 2, 5);
    sketch.Process(DynamicStream::InsertOnly(g, 6));
    std::vector<uint8_t> bytes;
    sketch.Serialize(&bytes);
    add("spanning_forest.bin", bytes);
    std::vector<uint8_t> bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    add("spanning_forest_bad_magic.bin", bad_magic);
  }
  {
    // Hybrid sparse-phase frames: a mixed forest (escalated hub, sparse
    // leaves) and a sparse L0 sampler, plus truncation/corruption variants
    // so the variable-length sparse sections' reject paths stay seeded.
    ForestSketchParams p;
    p.config = SketchConfig::Light();
    p.config.sparse_threshold = 4;
    SpanningForestSketch sketch(10, 2, 15, p);
    for (VertexId v = 1; v <= 6; ++v) sketch.Update(Hyperedge{0, v}, +1);
    std::vector<uint8_t> bytes;
    sketch.Serialize(&bytes);
    add("spanning_forest_hybrid_mixed.bin", bytes);
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + bytes.size() / 2);
    add("spanning_forest_hybrid_truncated.bin", truncated);
    std::vector<uint8_t> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    add("spanning_forest_hybrid_corrupt.bin", flipped);
  }
  {
    SketchConfig config = SketchConfig::Light();
    config.sparse_threshold = 8;
    L0Sampler sampler(1000, config, 16);
    for (int i = 0; i < 3; ++i) sampler.Update(static_cast<u128>(i * 53), +1);
    std::vector<uint8_t> bytes;
    sampler.Serialize(&bytes);
    add("l0_sampler_sparse.bin", bytes);
  }
  {
    KSkeletonSketch sketch(10, 3, 2, 7);
    sketch.Process(DynamicStream::InsertOnly(h, 8));
    std::vector<uint8_t> bytes;
    sketch.Serialize(&bytes);
    add("k_skeleton.bin", bytes);
  }
  {
    VcQueryParams p;
    p.k = 1;
    p.explicit_r = 4;
    p.forest.config = SketchConfig::Light();
    VcQuerySketch sketch(10, p, 9);
    sketch.Process(DynamicStream::InsertOnly(g, 10));
    std::vector<uint8_t> bytes;
    sketch.Serialize(&bytes);
    add("vc_query.bin", bytes);
  }
  {
    VcQueryParams p;
    p.k = 1;
    p.explicit_r = 4;
    p.forest.config = SketchConfig::Light();
    HyperVcQuerySketch sketch(10, 3, p, 11);
    sketch.Process(DynamicStream::InsertOnly(h, 12));
    std::vector<uint8_t> bytes;
    sketch.Serialize(&bytes);
    add("hyper_vc_query.bin", bytes);
  }
  {
    SparsifierParams p;
    p.levels = 4;
    p.k = 4;
    p.forest.config = SketchConfig::Light();
    HypergraphSparsifierSketch sketch(10, 2, p, 13);
    sketch.Process(DynamicStream::InsertOnly(g, 14));
    std::vector<uint8_t> bytes;
    sketch.Serialize(&bytes);
    add("sparsifier.bin", bytes);
  }
  return entries;
}

std::vector<CorpusEntry> StreamSeedCorpus() {
  std::vector<CorpusEntry> entries;
  std::vector<StreamSpec> grid = DefaultSpecGrid();
  // One representative per family from the insert-only block plus a few
  // churn/delete-down schedules: enough structural diversity to seed the
  // mutator without bloating the checked-in corpus.
  for (size_t i = 0; i < grid.size(); i += (i < 12 ? 1 : 5)) {
    const StreamSpec& spec = grid[i];
    BuiltStream built = spec.Build();
    if (spec.n > 31 || built.max_rank > 4) continue;
    CorpusEntry entry;
    entry.name = std::string(FamilyName(spec.family)) + "_" +
                 ChurnName(spec.churn) + ".bin";
    entry.bytes = EncodeFuzzStream(spec.n, built.max_rank, built.stream);
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<size_t> WriteCorpusDir(const std::string& dir,
                              const std::vector<CorpusEntry>& entries) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("create_directories(" + dir + "): " +
                            ec.message());
  }
  size_t written = 0;
  for (const CorpusEntry& entry : entries) {
    std::string path = dir + "/" + entry.name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::Internal("fopen(" + path + ") failed");
    }
    size_t wrote =
        entry.bytes.empty()
            ? 0
            : std::fwrite(entry.bytes.data(), 1, entry.bytes.size(), f);
    std::fclose(f);
    if (wrote != entry.bytes.size()) {
      return Status::Internal("short write to " + path);
    }
    ++written;
  }
  return written;
}

}  // namespace testkit
}  // namespace gms
