#include "testkit/stream_spec.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "graph/generators.h"
#include "util/random.h"

namespace gms {
namespace testkit {

namespace {

struct FamilyEntry {
  Family family;
  const char* name;
};

constexpr FamilyEntry kFamilies[] = {
    {Family::kPath, "path"},
    {Family::kCycle, "cycle"},
    {Family::kRandomTree, "random_tree"},
    {Family::kErdosRenyi, "erdos_renyi"},
    {Family::kGnm, "gnm"},
    {Family::kExpander, "expander"},
    {Family::kPlantedSeparator, "planted_separator"},
    {Family::kHyperCycle, "hyper_cycle"},
    {Family::kRandomUniform, "random_uniform"},
    {Family::kRandomHypergraph, "random_hypergraph"},
    {Family::kPlantedHyperSeparator, "planted_hyper_separator"},
    {Family::kPlantedHyperCut, "planted_hyper_cut"},
    {Family::kRmat, "rmat"},
    {Family::kRoadLike, "road_like"},
    {Family::kTemporalChurn, "temporal_churn"},
};

struct ChurnEntry {
  Churn churn;
  const char* name;
};

constexpr ChurnEntry kChurns[] = {
    {Churn::kInsertOnly, "insert_only"},
    {Churn::kWithChurn, "with_churn"},
    {Churn::kDeleteDown, "delete_down"},
};

constexpr char kSpecVersion[] = "gms-spec-v1";

/// Superset of `final_graph` with `extra` additional random hyperedges of
/// cardinality in [2, max_rank] (rejection-sampled; stops short on dense
/// inputs, mirroring DynamicStream::WithChurn's contract).
Hypergraph SupersetOf(const Hypergraph& final_graph, size_t n, size_t max_rank,
                      size_t extra, uint64_t seed) {
  Hypergraph superset = final_graph;
  Rng rng(seed);
  size_t attempts = 0;
  const size_t max_attempts = 50 * n * (extra + 1);
  while (extra > 0 && ++attempts < max_attempts) {
    size_t r = max_rank <= 2 ? 2 : 2 + rng.Below(max_rank - 1);
    std::vector<VertexId> vs;
    while (vs.size() < r) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      bool dup = false;
      for (VertexId w : vs) dup |= w == v;
      if (!dup) vs.push_back(v);
    }
    if (superset.AddEdge(Hyperedge(std::move(vs)))) --extra;
  }
  return superset;
}

}  // namespace

const char* FamilyName(Family f) {
  for (const auto& e : kFamilies) {
    if (e.family == f) return e.name;
  }
  return "unknown";
}

const char* ChurnName(Churn c) {
  for (const auto& e : kChurns) {
    if (e.churn == c) return e.name;
  }
  return "unknown";
}

BuiltStream StreamSpec::Build() const {
  BuiltStream out;
  out.max_rank = 2;
  switch (family) {
    case Family::kPath:
      out.final_graph = Hypergraph::FromGraph(PathGraph(n));
      break;
    case Family::kCycle:
      out.final_graph = Hypergraph::FromGraph(CycleGraph(n));
      break;
    case Family::kRandomTree:
      out.final_graph = Hypergraph::FromGraph(RandomTree(n, gseed));
      break;
    case Family::kErdosRenyi:
      out.final_graph = Hypergraph::FromGraph(ErdosRenyi(n, p, gseed));
      break;
    case Family::kGnm:
      out.final_graph = Hypergraph::FromGraph(Gnm(n, m, gseed));
      break;
    case Family::kExpander:
      out.final_graph =
          Hypergraph::FromGraph(UnionOfHamiltonianCycles(n, k, gseed));
      break;
    case Family::kPlantedSeparator: {
      PlantedSeparatorGraph planted = PlantedSeparator(n, k, gseed);
      out.final_graph = Hypergraph::FromGraph(planted.graph);
      out.separator = std::move(planted.separator);
      break;
    }
    case Family::kHyperCycle:
      out.final_graph = HyperCycle(n, rank);
      out.max_rank = rank;
      break;
    case Family::kRandomUniform:
      out.final_graph = RandomUniformHypergraph(n, m, rank, gseed);
      out.max_rank = rank;
      break;
    case Family::kRandomHypergraph:
      out.final_graph = RandomHypergraph(n, m, rank_min, rank, gseed);
      out.max_rank = rank;
      break;
    case Family::kPlantedHyperSeparator: {
      PlantedHyperSeparator planted =
          PlantedHypergraphSeparator(n, k, rank, gseed);
      out.final_graph = std::move(planted.hypergraph);
      out.separator = std::move(planted.separator);
      out.max_rank = rank;
      break;
    }
    case Family::kPlantedHyperCut: {
      PlantedCutHypergraph planted =
          PlantedHypergraphCut(n, rank, k, m, gseed);
      out.final_graph = std::move(planted.hypergraph);
      out.planted_cut = planted.planted_cut_size;
      out.max_rank = rank;
      break;
    }
    case Family::kRmat:
      out.final_graph = Hypergraph::FromGraph(RmatGraph(n, m, gseed));
      break;
    case Family::kRoadLike:
      out.final_graph = Hypergraph::FromGraph(RoadNetwork(n, m, gseed));
      break;
    case Family::kTemporalChurn: {
      // Sliding-window replay over a Gnm edge population: the stream IS
      // the schedule, so this family bypasses the churn switch below.
      // `m` is the window (= final edge count), `decoys` the edges that
      // expire out of the window before the stream ends.
      const size_t max_m = size_t{n} * (n - 1) / 2;
      const size_t population = std::min<size_t>(max_m, size_t{m} + decoys);
      Graph pool = Gnm(n, population, gseed);
      std::vector<Edge> order = pool.Edges();
      Rng rng(sseed);
      Shuffle(order, rng);
      const size_t window = std::min<size_t>(m, order.size());
      out.final_graph = Hypergraph(n);
      for (size_t i = order.size() - window; i < order.size(); ++i) {
        out.final_graph.AddEdge(Hyperedge(order[i]));
      }
      for (size_t i = 0; i < order.size(); ++i) {
        out.stream.Push(Hyperedge(order[i]), +1);
        if (i >= window) {
          out.stream.Push(Hyperedge(order[i - window]), -1);
        }
      }
      out.max_rank = 2;
      return out;
    }
  }
  // A family can legally emit edges above its nominal rank field (e.g.
  // rank defaults to 2 for graph families); take the observed max too.
  out.max_rank = std::max(out.max_rank, out.final_graph.Rank());
  out.max_rank = std::max<size_t>(out.max_rank, 2);

  switch (churn) {
    case Churn::kInsertOnly:
      out.stream = DynamicStream::InsertOnly(out.final_graph, sseed);
      break;
    case Churn::kWithChurn:
      out.stream = DynamicStream::WithChurn(out.final_graph, decoys,
                                            out.max_rank, sseed);
      break;
    case Churn::kDeleteDown: {
      Hypergraph superset =
          SupersetOf(out.final_graph, n, out.max_rank, decoys, sseed ^ gseed);
      out.stream =
          DynamicStream::InsertThenDeleteDown(superset, out.final_graph, sseed);
      break;
    }
  }
  return out;
}

std::string StreamSpec::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s;family=%s;n=%" PRIu32 ";m=%" PRIu32 ";k=%" PRIu32
                ";rank=%" PRIu32 ";rank_min=%" PRIu32 ";p=%.17g;gseed=%" PRIu64
                ";churn=%s;decoys=%" PRIu32 ";sseed=%" PRIu64,
                kSpecVersion, FamilyName(family), n, m, k, rank, rank_min, p,
                gseed, ChurnName(churn), decoys, sseed);
  return buf;
}

Result<StreamSpec> StreamSpec::Parse(std::string_view line) {
  StreamSpec spec;
  size_t pos = 0;
  bool saw_version = false;
  while (pos <= line.size()) {
    size_t end = line.find(';', pos);
    if (end == std::string_view::npos) end = line.size();
    std::string_view token = line.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) {
      if (pos > line.size()) break;
      continue;
    }
    if (!saw_version) {
      if (token != kSpecVersion) {
        return Status::InvalidArgument("stream spec: expected version tag '" +
                                       std::string(kSpecVersion) + "', got '" +
                                       std::string(token) + "'");
      }
      saw_version = true;
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("stream spec: token without '=': '" +
                                     std::string(token) + "'");
    }
    std::string_view key = token.substr(0, eq);
    std::string_view val = token.substr(eq + 1);
    auto parse_u32 = [&](uint32_t* out) {
      auto [ptr, ec] = std::from_chars(val.data(), val.data() + val.size(),
                                       *out);
      return ec == std::errc() && ptr == val.data() + val.size();
    };
    auto parse_u64 = [&](uint64_t* out) {
      auto [ptr, ec] = std::from_chars(val.data(), val.data() + val.size(),
                                       *out);
      return ec == std::errc() && ptr == val.data() + val.size();
    };
    bool ok = true;
    if (key == "family") {
      ok = false;
      for (const auto& e : kFamilies) {
        if (val == e.name) {
          spec.family = e.family;
          ok = true;
        }
      }
    } else if (key == "churn") {
      ok = false;
      for (const auto& e : kChurns) {
        if (val == e.name) {
          spec.churn = e.churn;
          ok = true;
        }
      }
    } else if (key == "n") {
      ok = parse_u32(&spec.n);
    } else if (key == "m") {
      ok = parse_u32(&spec.m);
    } else if (key == "k") {
      ok = parse_u32(&spec.k);
    } else if (key == "rank") {
      ok = parse_u32(&spec.rank);
    } else if (key == "rank_min") {
      ok = parse_u32(&spec.rank_min);
    } else if (key == "decoys") {
      ok = parse_u32(&spec.decoys);
    } else if (key == "gseed") {
      ok = parse_u64(&spec.gseed);
    } else if (key == "sseed") {
      ok = parse_u64(&spec.sseed);
    } else if (key == "p") {
      // std::from_chars for doubles is missing in some libstdc++ configs;
      // strtod on a bounded copy round-trips the %.17g rendering exactly.
      char tmp[64];
      if (val.size() >= sizeof(tmp)) {
        ok = false;
      } else {
        std::memcpy(tmp, val.data(), val.size());
        tmp[val.size()] = '\0';
        char* endp = nullptr;
        spec.p = std::strtod(tmp, &endp);
        ok = endp == tmp + val.size();
      }
    } else {
      return Status::InvalidArgument("stream spec: unknown key '" +
                                     std::string(key) + "'");
    }
    if (!ok) {
      return Status::InvalidArgument("stream spec: bad value for '" +
                                     std::string(key) + "': '" +
                                     std::string(val) + "'");
    }
    if (pos > line.size()) break;
  }
  if (!saw_version) {
    return Status::InvalidArgument("stream spec: empty line");
  }
  return spec;
}

StreamSpec StreamSpec::WithTrial(uint64_t trial) const {
  StreamSpec out = *this;
  uint64_t base = gseed;
  base = Mix64(base ^ (0x9e3779b97f4a7c15ULL * (trial + 1)));
  out.gseed = Mix64(base ^ 1);
  out.sseed = Mix64(base ^ 2);
  return out;
}

std::vector<StreamSpec> DefaultSpecGrid() {
  std::vector<StreamSpec> grid;
  auto add = [&grid](StreamSpec s) { grid.push_back(s); };
  for (Churn churn :
       {Churn::kInsertOnly, Churn::kWithChurn, Churn::kDeleteDown}) {
    auto with_churn = [churn](StreamSpec s) {
      s.churn = churn;
      s.decoys = churn == Churn::kInsertOnly ? 0 : 12;
      return s;
    };
    add(with_churn({.family = Family::kPath, .n = 16}));
    add(with_churn({.family = Family::kCycle, .n = 16}));
    add(with_churn({.family = Family::kRandomTree, .n = 18}));
    add(with_churn({.family = Family::kErdosRenyi, .n = 20, .p = 0.2}));
    add(with_churn({.family = Family::kGnm, .n = 18, .m = 30}));
    add(with_churn({.family = Family::kExpander, .n = 16, .k = 2}));
    add(with_churn({.family = Family::kPlantedSeparator, .n = 20, .k = 2}));
    add(with_churn({.family = Family::kHyperCycle, .n = 16, .rank = 3}));
    add(with_churn(
        {.family = Family::kRandomUniform, .n = 16, .m = 24, .rank = 3}));
    add(with_churn({.family = Family::kRandomHypergraph,
                    .n = 16,
                    .m = 20,
                    .rank = 4,
                    .rank_min = 2}));
    add(with_churn({.family = Family::kPlantedHyperSeparator,
                    .n = 18,
                    .k = 2,
                    .rank = 3}));
    add(with_churn({.family = Family::kPlantedHyperCut,
                    .n = 16,
                    .m = 14,
                    .k = 3,
                    .rank = 3}));
    add(with_churn({.family = Family::kRmat, .n = 20, .m = 36}));
    add(with_churn({.family = Family::kRoadLike, .n = 20, .m = 5}));
  }
  // kTemporalChurn owns its stream schedule (the churn field is ignored),
  // so it appears once, not once per churn.
  add({.family = Family::kTemporalChurn, .n = 18, .m = 24, .decoys = 16});
  return grid;
}

}  // namespace testkit
}  // namespace gms
