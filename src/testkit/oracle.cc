#include "testkit/oracle.h"

#include <cmath>
#include <cstdio>
#include <algorithm>

#include "connectivity/connectivity_query.h"
#include "exact/hypergraph_mincut.h"
#include "exact/strength.h"
#include "graph/edge_codec.h"
#include "graph/traversal.h"
#include "reconstruct/light_recovery.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "sparsify/verify.h"
#include "stream/stream_driver.h"
#include "util/random.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace testkit {

namespace {

/// The stream as the sketch sees it: every update the fault hook drops is
/// withheld. Exact algorithms always consume the TRUE final graph.
std::vector<StreamUpdate> SketchSideUpdates(const DynamicStream& stream,
                                            const FaultHook& fault) {
  std::vector<StreamUpdate> out;
  out.reserve(stream.size());
  for (const StreamUpdate& u : stream) {
    if (!fault.Drops(u)) out.push_back(u);
  }
  return out;
}

VcQueryParams VcParams(const OracleOptions& opt) {
  VcQueryParams p;
  p.k = opt.k;
  if (opt.explicit_r > 0) {
    p.explicit_r = opt.explicit_r;
  } else {
    // Half the paper's R = 16 k^2 ln n: the sized-down constant the unit
    // suites established as empirically reliable at these scales.
    p.r_multiplier = 0.5;
  }
  p.forest.config = SketchConfig::Light();
  return p;
}

/// Removal-set queries for the VC oracles: the planted separator first (the
/// one set the family GUARANTEES disconnects), then seeded random sets.
std::vector<std::vector<VertexId>> VcQuerySets(
    size_t n, const std::vector<VertexId>& planted, uint64_t seed,
    const OracleOptions& opt) {
  std::vector<std::vector<VertexId>> queries;
  if (!planted.empty() && planted.size() <= opt.k) queries.push_back(planted);
  Rng rng(Mix64(seed ^ 0x71c7a9d05c9f2e3bULL));
  for (size_t q = 0; q < opt.num_queries; ++q) {
    size_t want = 1 + rng.Below(std::max<size_t>(opt.k, 1));
    want = std::min(want, n > 0 ? n - 1 : 0);
    std::vector<VertexId> s;
    size_t attempts = 0;
    while (s.size() < want && ++attempts < 64 * (want + 1)) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    if (!s.empty()) queries.push_back(std::move(s));
  }
  return queries;
}

std::string DescribeSet(const std::vector<VertexId>& s) {
  std::string out = "{";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(s[i]);
  }
  out += "}";
  return out;
}

OracleOutcome Disagree(std::string detail) {
  OracleOutcome out;
  out.agreed = false;
  out.detail = std::move(detail);
  return out;
}

OracleOutcome DecodeFailed(const Status& st) {
  OracleOutcome out;
  out.decode_failure = true;
  out.detail = st.ToString();
  return out;
}

OracleOutcome NotApplicable() {
  OracleOutcome out;
  out.applicable = false;
  return out;
}

}  // namespace

const char* OracleName(OracleKind k) {
  switch (k) {
    case OracleKind::kComponents:
      return "components";
    case OracleKind::kSpanningNoGhost:
      return "spanning_no_ghost";
    case OracleKind::kEdgeConnectivity:
      return "edge_connectivity";
    case OracleKind::kLightRecovery:
      return "light_recovery";
    case OracleKind::kVcQuery:
      return "vc_query";
    case OracleKind::kHyperVcQuery:
      return "hyper_vc_query";
    case OracleKind::kSparsifier:
      return "sparsifier";
    case OracleKind::kL0Sampler:
      return "l0_sampler";
  }
  return "unknown";
}

std::vector<OracleKind> AllOracles() {
  return {OracleKind::kComponents,   OracleKind::kSpanningNoGhost,
          OracleKind::kEdgeConnectivity, OracleKind::kLightRecovery,
          OracleKind::kVcQuery,      OracleKind::kHyperVcQuery,
          OracleKind::kSparsifier,   OracleKind::kL0Sampler};
}

OracleOutcome RunOracleOnStream(OracleKind kind, size_t n, size_t max_rank,
                                const DynamicStream& stream,
                                const Hypergraph& truth,
                                const std::vector<VertexId>& planted_separator,
                                uint64_t sketch_seed,
                                const OracleOptions& opt) {
  if (n < 2) return NotApplicable();
  const std::vector<StreamUpdate> updates =
      SketchSideUpdates(stream, opt.fault);
  const std::span<const StreamUpdate> span(updates);

  switch (kind) {
    case OracleKind::kComponents: {
      ConnectivityQuery q(n, max_rank, sketch_seed);
      if (opt.driver_ingest && !span.empty()) {
        // Gutter-driver ingestion with the batch fault threaded through:
        // DropsBatch charges a dropped batch's FULL entry count to
        // fault.lost_updates (the driver's unit of loss is the batch).
        GutterDriverParams dp;
        dp.appliers = 2;
        dp.readers = 1;
        if (opt.fault.drop_batch) {
          dp.drop_batch = [&fault = opt.fault](VertexId v, size_t entries) {
            return fault.DropsBatch(v, entries);
          };
        }
        DriveStream(&q.sketch(), span, dp);
      } else {
        for (const StreamUpdate& u : span) q.Update(u.edge, u.delta);
      }
      auto got = q.NumComponents();
      if (!got.ok()) return DecodeFailed(got.status());
      size_t want = NumComponents(truth);
      if (*got != want) {
        return Disagree("components: sketch=" + std::to_string(*got) +
                        " exact=" + std::to_string(want));
      }
      return OracleOutcome();
    }

    case OracleKind::kSpanningNoGhost: {
      ConnectivityQuery q(n, max_rank, sketch_seed);
      for (const StreamUpdate& u : span) q.Update(u.edge, u.delta);
      auto span_graph = q.SpanningGraph();
      if (!span_graph.ok()) return DecodeFailed(span_graph.status());
      for (const Hyperedge& e : span_graph->Edges()) {
        if (!truth.HasEdge(e)) {
          return Disagree("spanning_no_ghost: ghost edge " + e.ToString());
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kEdgeConnectivity: {
      EdgeConnectivityQuery q(n, max_rank, opt.k, sketch_seed);
      for (const StreamUpdate& u : span) q.Update(u.edge, u.delta);
      auto got = q.EdgeConnectivityCapped();
      if (!got.ok()) return DecodeFailed(got.status());
      size_t exact = 0;
      if (truth.NumVertices() >= 2 && IsConnected(truth)) {
        exact = static_cast<size_t>(HypergraphMinCut(truth).value + 0.5);
      }
      size_t want = std::min(exact, opt.k);
      if (*got != want) {
        return Disagree("edge_connectivity: sketch=" + std::to_string(*got) +
                        " exact=" + std::to_string(want));
      }
      return OracleOutcome();
    }

    case OracleKind::kLightRecovery: {
      LightRecoverySketch sketch(n, max_rank, opt.k, sketch_seed);
      sketch.Process(span);
      auto rec = sketch.Recover();
      if (!rec.ok()) return DecodeFailed(rec.status());
      LightDecomposition offline = OfflineLightEdges(truth, opt.k);
      if (rec->light.NumEdges() != offline.light.NumEdges()) {
        return Disagree(
            "light_recovery: sketch recovered " +
            std::to_string(rec->light.NumEdges()) + " edges, offline light_k has " +
            std::to_string(offline.light.NumEdges()));
      }
      for (const Hyperedge& e : rec->light.Edges()) {
        if (!offline.light.HasEdge(e)) {
          return Disagree("light_recovery: non-light edge " + e.ToString());
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kVcQuery: {
      if (truth.Rank() > 2) return NotApplicable();
      Graph g(n);
      for (const Hyperedge& e : truth.Edges()) g.AddEdge(e.AsEdge());
      VcQuerySketch sketch(n, VcParams(opt), sketch_seed);
      sketch.Process(span);
      auto snap = sketch.Query();
      if (!snap.ok()) return DecodeFailed(snap.status());
      for (const auto& s :
           VcQuerySets(n, planted_separator, sketch_seed, opt)) {
        auto got = snap.value().Disconnects(s);
        if (!got.ok()) return DecodeFailed(got.status());
        bool want = !IsConnectedExcluding(g, s);
        if (*got != want) {
          return Disagree("vc_query: S=" + DescribeSet(s) + " sketch=" +
                          (*got ? "disconnects" : "stays connected") +
                          " exact=" + (want ? "disconnects" : "stays connected"));
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kHyperVcQuery: {
      HyperVcQuerySketch sketch(n, max_rank, VcParams(opt), sketch_seed);
      sketch.Process(span);
      auto snap = sketch.Query();
      if (!snap.ok()) return DecodeFailed(snap.status());
      for (const auto& s :
           VcQuerySets(n, planted_separator, sketch_seed, opt)) {
        auto got = snap.value().Disconnects(s);
        if (!got.ok()) return DecodeFailed(got.status());
        bool want = !IsConnectedExcluding(truth, s);
        if (*got != want) {
          return Disagree("hyper_vc_query: S=" + DescribeSet(s) + " sketch=" +
                          (*got ? "disconnects" : "stays connected") +
                          " exact=" + (want ? "disconnects" : "stays connected"));
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kSparsifier: {
      SparsifierParams params;
      params.epsilon = opt.sparsifier_epsilon;
      params.levels = opt.sparsifier_levels;
      params.k = opt.sparsifier_k;
      HypergraphSparsifierSketch sketch(n, max_rank, params, sketch_seed);
      sketch.Process(span);
      auto out = sketch.ExtractSparsifier();
      if (!out.ok()) return DecodeFailed(out.status());
      if (out->truncated) {
        return DecodeFailed(Status::DecodeFailure(
            "sparsifier: deepest level still held heavy edges"));
      }
      SparsifierReport report = VerifySparsifier(
          truth, out->sparsifier, opt.verify_epsilon,
          /*exhaustive_threshold=*/16, /*samples=*/400, /*seed=*/sketch_seed);
      if (!report.within_epsilon) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "sparsifier: max relative cut error %.3f > %.3f "
                      "(zero mismatches: %zu)",
                      report.stats.max_rel_error, opt.verify_epsilon,
                      report.stats.zero_mismatches);
        return Disagree(buf);
      }
      return OracleOutcome();
    }

    case OracleKind::kL0Sampler: {
      EdgeCodec codec(n, max_rank);
      L0Sampler sampler(codec.DomainSize(), SketchConfig::Default(),
                        sketch_seed);
      for (const StreamUpdate& u : span) {
        sampler.Update(codec.Encode(u.edge), u.delta);
      }
      auto sample = sampler.Sample();
      if (truth.NumEdges() == 0) {
        // The support is empty; an honest sampler must refuse to answer.
        if (sample.ok()) {
          return Disagree("l0_sampler: sampled value " +
                          std::to_string(sample->value) +
                          " from an empty support");
        }
        return OracleOutcome();
      }
      if (!sample.ok()) return DecodeFailed(sample.status());
      auto edge = codec.Decode(sample->index);
      if (!edge.ok()) {
        return Disagree("l0_sampler: sampled index outside the codec domain");
      }
      if (!truth.HasEdge(*edge)) {
        return Disagree("l0_sampler: sampled edge " + edge->ToString() +
                        " not in the final graph");
      }
      if (sample->value != 1) {
        return Disagree("l0_sampler: edge " + edge->ToString() +
                        " has multiplicity " + std::to_string(sample->value) +
                        " (want 1)");
      }
      return OracleOutcome();
    }
  }
  return Disagree("unknown oracle kind");
}

OracleOutcome RunOracle(OracleKind kind, const StreamSpec& spec,
                        uint64_t sketch_seed, const OracleOptions& opt) {
  BuiltStream built = spec.Build();
  OracleOutcome out =
      RunOracleOnStream(kind, spec.n, built.max_rank, built.stream,
                        built.final_graph, built.separator, sketch_seed, opt);
  if (!out.Succeeded() && out.applicable) {
    out.detail = std::string(OracleName(kind)) + ";sketch_seed=" +
                 std::to_string(sketch_seed) + ";" + spec.ToString() + " :: " +
                 out.detail;
  }
  return out;
}

WilsonInterval Wilson(size_t successes, size_t trials, double z) {
  WilsonInterval w;
  if (trials == 0) return w;  // vacuous [0, 1]
  const double nt = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / nt;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nt;
  const double center = phat + z2 / (2.0 * nt);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nt + z2 / (4.0 * nt * nt));
  w.lo = std::max(0.0, (center - margin) / denom);
  w.hi = std::min(1.0, (center + margin) / denom);
  return w;
}

SweepResult RunSweep(OracleKind kind, const StreamSpec& base, size_t trials,
                     const OracleOptions& opt) {
  SweepResult result;
  for (size_t t = 0; t < trials; ++t) {
    StreamSpec spec = base.WithTrial(t);
    uint64_t sketch_seed =
        Mix64(base.gseed ^ (0xa5a5a5a5a5a5a5a5ULL + 2 * t + 1));
    OracleOutcome out = RunOracle(kind, spec, sketch_seed, opt);
    if (!out.applicable) continue;
    ++result.trials;
    if (out.Succeeded()) {
      ++result.successes;
    } else {
      if (out.decode_failure) {
        ++result.decode_failures;
      } else {
        ++result.disagreements;
      }
      result.failures.push_back(out.detail);
    }
  }
  return result;
}

}  // namespace testkit
}  // namespace gms
