#include "testkit/oracle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "apps/approx_min_cut.h"
#include "apps/two_edge_connect.h"
#include "connectivity/connectivity_query.h"
#include "exact/hypergraph_mincut.h"
#include "serve/sketch_server.h"
#include "exact/strength.h"
#include "graph/edge_codec.h"
#include "graph/traversal.h"
#include "reconstruct/light_recovery.h"
#include "sketch/l0_sampler.h"
#include "sparsify/sparsifier_sketch.h"
#include "sparsify/verify.h"
#include "stream/stream_driver.h"
#include "util/random.h"
#include "vertexconn/hyper_vc_query.h"
#include "vertexconn/vc_query_sketch.h"

namespace gms {
namespace testkit {

namespace {

/// The stream as the sketch sees it: every update the fault hook drops is
/// withheld. Exact algorithms always consume the TRUE final graph.
std::vector<StreamUpdate> SketchSideUpdates(const DynamicStream& stream,
                                            const FaultHook& fault) {
  std::vector<StreamUpdate> out;
  out.reserve(stream.size());
  for (const StreamUpdate& u : stream) {
    if (!fault.Drops(u)) out.push_back(u);
  }
  return out;
}

VcQueryParams VcParams(const OracleOptions& opt) {
  VcQueryParams p;
  p.k = opt.k;
  if (opt.explicit_r > 0) {
    p.explicit_r = opt.explicit_r;
  } else {
    // Half the paper's R = 16 k^2 ln n: the sized-down constant the unit
    // suites established as empirically reliable at these scales.
    p.r_multiplier = 0.5;
  }
  p.forest.config = SketchConfig::Light();
  return p;
}

/// Removal-set queries for the VC oracles: the planted separator first (the
/// one set the family GUARANTEES disconnects), then seeded random sets.
std::vector<std::vector<VertexId>> VcQuerySets(
    size_t n, const std::vector<VertexId>& planted, uint64_t seed,
    const OracleOptions& opt) {
  std::vector<std::vector<VertexId>> queries;
  if (!planted.empty() && planted.size() <= opt.k) queries.push_back(planted);
  Rng rng(Mix64(seed ^ 0x71c7a9d05c9f2e3bULL));
  for (size_t q = 0; q < opt.num_queries; ++q) {
    size_t want = 1 + rng.Below(std::max<size_t>(opt.k, 1));
    want = std::min(want, n > 0 ? n - 1 : 0);
    std::vector<VertexId> s;
    size_t attempts = 0;
    while (s.size() < want && ++attempts < 64 * (want + 1)) {
      VertexId v = static_cast<VertexId>(rng.Below(n));
      bool dup = false;
      for (VertexId w : s) dup |= w == v;
      if (!dup) s.push_back(v);
    }
    if (!s.empty()) queries.push_back(std::move(s));
  }
  return queries;
}

std::string DescribeSet(const std::vector<VertexId>& s) {
  std::string out = "{";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(s[i]);
  }
  out += "}";
  return out;
}

OracleOutcome Disagree(std::string detail) {
  OracleOutcome out;
  out.agreed = false;
  out.detail = std::move(detail);
  return out;
}

OracleOutcome DecodeFailed(const Status& st) {
  OracleOutcome out;
  out.decode_failure = true;
  out.detail = st.ToString();
  return out;
}

OracleOutcome NotApplicable() {
  OracleOutcome out;
  out.applicable = false;
  return out;
}

/// Ground-truth bridges by the definition: hyperedge e is a bridge iff
/// deleting it increases the component count. Deliberately independent of
/// the Tarjan-based BridgeHyperedges the apps use (quadratic, but the spec
/// grid is tiny).
std::vector<Hyperedge> BruteBridges(const Hypergraph& g) {
  const std::vector<Hyperedge>& edges = g.Edges();
  const size_t base = NumComponents(g);
  std::vector<Hyperedge> bridges;
  for (size_t i = 0; i < edges.size(); ++i) {
    Hypergraph h(g.NumVertices());
    for (size_t j = 0; j < edges.size(); ++j) {
      if (j != i) h.AddEdge(edges[j]);
    }
    if (NumComponents(h) > base) bridges.push_back(edges[i]);
  }
  return bridges;
}

}  // namespace

const char* OracleName(OracleKind k) {
  switch (k) {
    case OracleKind::kComponents:
      return "components";
    case OracleKind::kSpanningNoGhost:
      return "spanning_no_ghost";
    case OracleKind::kEdgeConnectivity:
      return "edge_connectivity";
    case OracleKind::kLightRecovery:
      return "light_recovery";
    case OracleKind::kVcQuery:
      return "vc_query";
    case OracleKind::kHyperVcQuery:
      return "hyper_vc_query";
    case OracleKind::kSparsifier:
      return "sparsifier";
    case OracleKind::kL0Sampler:
      return "l0_sampler";
    case OracleKind::kTwoEdgeConnect:
      return "two_edge_connect";
    case OracleKind::kApproxMinCut:
      return "approx_min_cut";
    case OracleKind::kBridgeQuery:
      return "bridge_query";
  }
  return "unknown";
}

std::vector<OracleKind> AllOracles() {
  return {OracleKind::kComponents,   OracleKind::kSpanningNoGhost,
          OracleKind::kEdgeConnectivity, OracleKind::kLightRecovery,
          OracleKind::kVcQuery,      OracleKind::kHyperVcQuery,
          OracleKind::kSparsifier,   OracleKind::kL0Sampler,
          OracleKind::kTwoEdgeConnect, OracleKind::kApproxMinCut,
          OracleKind::kBridgeQuery};
}

OracleOutcome RunOracleOnStream(OracleKind kind, size_t n, size_t max_rank,
                                const DynamicStream& stream,
                                const Hypergraph& truth,
                                const std::vector<VertexId>& planted_separator,
                                uint64_t sketch_seed,
                                const OracleOptions& opt) {
  if (n < 2) return NotApplicable();
  const std::vector<StreamUpdate> updates =
      SketchSideUpdates(stream, opt.fault);
  const std::span<const StreamUpdate> span(updates);

  switch (kind) {
    case OracleKind::kComponents: {
      ConnectivityQuery q(n, max_rank, sketch_seed);
      if (opt.driver_ingest && !span.empty()) {
        // Gutter-driver ingestion with the batch fault threaded through:
        // DropsBatch charges a dropped batch's FULL entry count to
        // fault.lost_updates (the driver's unit of loss is the batch).
        GutterDriverParams dp;
        dp.appliers = 2;
        dp.readers = 1;
        if (opt.fault.drop_batch) {
          dp.drop_batch = [&fault = opt.fault](VertexId v, size_t entries) {
            return fault.DropsBatch(v, entries);
          };
        }
        DriveStream(&q.sketch(), span, dp);
      } else {
        for (const StreamUpdate& u : span) q.Update(u.edge, u.delta);
      }
      auto got = q.NumComponents();
      if (!got.ok()) return DecodeFailed(got.status());
      size_t want = NumComponents(truth);
      if (*got != want) {
        return Disagree("components: sketch=" + std::to_string(*got) +
                        " exact=" + std::to_string(want));
      }
      return OracleOutcome();
    }

    case OracleKind::kSpanningNoGhost: {
      ConnectivityQuery q(n, max_rank, sketch_seed);
      for (const StreamUpdate& u : span) q.Update(u.edge, u.delta);
      auto span_graph = q.SpanningGraph();
      if (!span_graph.ok()) return DecodeFailed(span_graph.status());
      for (const Hyperedge& e : span_graph->Edges()) {
        if (!truth.HasEdge(e)) {
          return Disagree("spanning_no_ghost: ghost edge " + e.ToString());
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kEdgeConnectivity: {
      EdgeConnectivityQuery q(n, max_rank, opt.k, sketch_seed);
      for (const StreamUpdate& u : span) q.Update(u.edge, u.delta);
      auto got = q.EdgeConnectivityCapped();
      if (!got.ok()) return DecodeFailed(got.status());
      size_t exact = 0;
      if (truth.NumVertices() >= 2 && IsConnected(truth)) {
        exact = static_cast<size_t>(HypergraphMinCut(truth).value + 0.5);
      }
      size_t want = std::min(exact, opt.k);
      if (*got != want) {
        return Disagree("edge_connectivity: sketch=" + std::to_string(*got) +
                        " exact=" + std::to_string(want));
      }
      return OracleOutcome();
    }

    case OracleKind::kLightRecovery: {
      LightRecoverySketch sketch(n, max_rank, opt.k, sketch_seed);
      sketch.Process(span);
      auto rec = sketch.Recover();
      if (!rec.ok()) return DecodeFailed(rec.status());
      LightDecomposition offline = OfflineLightEdges(truth, opt.k);
      if (rec->light.NumEdges() != offline.light.NumEdges()) {
        return Disagree(
            "light_recovery: sketch recovered " +
            std::to_string(rec->light.NumEdges()) + " edges, offline light_k has " +
            std::to_string(offline.light.NumEdges()));
      }
      for (const Hyperedge& e : rec->light.Edges()) {
        if (!offline.light.HasEdge(e)) {
          return Disagree("light_recovery: non-light edge " + e.ToString());
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kVcQuery: {
      if (truth.Rank() > 2) return NotApplicable();
      Graph g(n);
      for (const Hyperedge& e : truth.Edges()) g.AddEdge(e.AsEdge());
      VcQuerySketch sketch(n, VcParams(opt), sketch_seed);
      sketch.Process(span);
      auto snap = sketch.Query();
      if (!snap.ok()) return DecodeFailed(snap.status());
      for (const auto& s :
           VcQuerySets(n, planted_separator, sketch_seed, opt)) {
        auto got = snap.value().Disconnects(s);
        if (!got.ok()) return DecodeFailed(got.status());
        bool want = !IsConnectedExcluding(g, s);
        if (*got != want) {
          return Disagree("vc_query: S=" + DescribeSet(s) + " sketch=" +
                          (*got ? "disconnects" : "stays connected") +
                          " exact=" + (want ? "disconnects" : "stays connected"));
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kHyperVcQuery: {
      HyperVcQuerySketch sketch(n, max_rank, VcParams(opt), sketch_seed);
      sketch.Process(span);
      auto snap = sketch.Query();
      if (!snap.ok()) return DecodeFailed(snap.status());
      for (const auto& s :
           VcQuerySets(n, planted_separator, sketch_seed, opt)) {
        auto got = snap.value().Disconnects(s);
        if (!got.ok()) return DecodeFailed(got.status());
        bool want = !IsConnectedExcluding(truth, s);
        if (*got != want) {
          return Disagree("hyper_vc_query: S=" + DescribeSet(s) + " sketch=" +
                          (*got ? "disconnects" : "stays connected") +
                          " exact=" + (want ? "disconnects" : "stays connected"));
        }
      }
      return OracleOutcome();
    }

    case OracleKind::kSparsifier: {
      SparsifierParams params;
      params.epsilon = opt.sparsifier_epsilon;
      params.levels = opt.sparsifier_levels;
      params.k = opt.sparsifier_k;
      HypergraphSparsifierSketch sketch(n, max_rank, params, sketch_seed);
      sketch.Process(span);
      auto out = sketch.ExtractSparsifier();
      if (!out.ok()) return DecodeFailed(out.status());
      if (out->truncated) {
        return DecodeFailed(Status::DecodeFailure(
            "sparsifier: deepest level still held heavy edges"));
      }
      SparsifierReport report = VerifySparsifier(
          truth, out->sparsifier, opt.verify_epsilon,
          /*exhaustive_threshold=*/16, /*samples=*/400, /*seed=*/sketch_seed);
      if (!report.within_epsilon) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "sparsifier: max relative cut error %.3f > %.3f "
                      "(zero mismatches: %zu)",
                      report.stats.max_rel_error, opt.verify_epsilon,
                      report.stats.zero_mismatches);
        return Disagree(buf);
      }
      return OracleOutcome();
    }

    case OracleKind::kL0Sampler: {
      EdgeCodec codec(n, max_rank);
      L0Sampler sampler(codec.DomainSize(), SketchConfig::Default(),
                        sketch_seed);
      for (const StreamUpdate& u : span) {
        sampler.Update(codec.Encode(u.edge), u.delta);
      }
      auto sample = sampler.Sample();
      if (truth.NumEdges() == 0) {
        // The support is empty; an honest sampler must refuse to answer.
        if (sample.ok()) {
          return Disagree("l0_sampler: sampled value " +
                          std::to_string(sample->value) +
                          " from an empty support");
        }
        return OracleOutcome();
      }
      if (!sample.ok()) return DecodeFailed(sample.status());
      auto edge = codec.Decode(sample->index);
      if (!edge.ok()) {
        return Disagree("l0_sampler: sampled index outside the codec domain");
      }
      if (!truth.HasEdge(*edge)) {
        return Disagree("l0_sampler: sampled edge " + edge->ToString() +
                        " not in the final graph");
      }
      if (sample->value != 1) {
        return Disagree("l0_sampler: edge " + edge->ToString() +
                        " has multiplicity " + std::to_string(sample->value) +
                        " (want 1)");
      }
      return OracleOutcome();
    }

    case OracleKind::kTwoEdgeConnect: {
      apps::TwoEdgeConnect app(n, max_rank, sketch_seed);
      app.Process(span);
      auto got = app.Query();
      if (!got.ok()) return DecodeFailed(got.status());
      const apps::TwoEdgeConnectAnswer& ans = got.value();
      const size_t want_components = NumComponents(truth);
      if (ans.num_components != want_components) {
        return Disagree("two_edge_connect: components sketch=" +
                        std::to_string(ans.num_components) +
                        " exact=" + std::to_string(want_components));
      }
      for (const Hyperedge& e : ans.skeleton.Edges()) {
        if (!truth.HasEdge(e)) {
          return Disagree("two_edge_connect: ghost skeleton edge " +
                          e.ToString());
        }
      }
      const Hypergraph got_bridges(n, ans.bridges);
      const Hypergraph want_bridges(n, BruteBridges(truth));
      if (!(got_bridges == want_bridges)) {
        return Disagree("two_edge_connect: bridge set mismatch (sketch " +
                        std::to_string(got_bridges.NumEdges()) + ", exact " +
                        std::to_string(want_bridges.NumEdges()) + ")");
      }
      const bool want_2ec =
          want_components == 1 && want_bridges.NumEdges() == 0;
      if (ans.two_edge_connected != want_2ec) {
        return Disagree("two_edge_connect: verdict sketch=" +
                        std::to_string(ans.two_edge_connected) +
                        " exact=" + std::to_string(want_2ec));
      }
      return OracleOutcome();
    }

    case OracleKind::kApproxMinCut: {
      apps::ApproxMinCut app(n, max_rank, /*k_cap=*/opt.k, sketch_seed);
      app.Process(span);
      auto got = app.Query();
      if (!got.ok()) return DecodeFailed(got.status());
      const apps::MinCutEstimate& est = got.value();
      size_t lambda = 0;
      if (IsConnected(truth)) {
        const HypergraphCut exact = truth.NumVertices() <= 16
                                        ? HypergraphMinCutBrute(truth)
                                        : HypergraphMinCut(truth);
        lambda = static_cast<size_t>(exact.value + 0.5);
      }
      const size_t want = std::min(lambda, opt.k);
      if (est.value != want) {
        return Disagree("approx_min_cut: sketch=" + std::to_string(est.value) +
                        " exact=" + std::to_string(want) +
                        " (lambda=" + std::to_string(lambda) + ")");
      }
      if (est.exact) {
        // An exact answer must certify itself: value below the resolving
        // level's k, and a shore of the TRUE graph achieving it.
        if (est.value >= est.resolved_k) {
          return Disagree("approx_min_cut: exact answer " +
                          std::to_string(est.value) +
                          " not below resolved_k=" +
                          std::to_string(est.resolved_k));
        }
        if (est.shore.size() != n ||
            truth.CutSize(est.shore) != est.value) {
          return Disagree("approx_min_cut: shore does not achieve the "
                          "claimed cut value " + std::to_string(est.value));
        }
      } else if (lambda < opt.k) {
        return Disagree("approx_min_cut: saturated at k_cap=" +
                        std::to_string(opt.k) + " but lambda=" +
                        std::to_string(lambda));
      }
      return OracleOutcome();
    }

    case OracleKind::kBridgeQuery: {
      if (truth.Rank() > 2) return NotApplicable();
      serve::SketchServerParams params =
          serve::SketchServerParams::Builder()
              .MaxRank(max_rank)
              .SkeletonK(std::max<size_t>(2, opt.k))
              .Build();
      serve::SketchServer server(n, params, sketch_seed);
      server.Ingest(span);
      server.Flush();
      const Hypergraph exact_bridges(n, BruteBridges(truth));
      // Every true edge, then random (possibly absent) pairs: a non-edge
      // is never a bridge, and the server must say so too.
      std::vector<std::pair<VertexId, VertexId>> pairs;
      for (const Hyperedge& e : truth.Edges()) pairs.push_back({e[0], e[1]});
      Rng rng(Mix64(sketch_seed ^ 0x3c6ef372fe94f82bULL));
      for (size_t q = 0; q < opt.num_queries; ++q) {
        pairs.push_back({static_cast<VertexId>(rng.Below(n)),
                         static_cast<VertexId>(rng.Below(n))});
      }
      for (const auto& [u, v] : pairs) {
        serve::ServeRequest req;
        req.op = serve::ServeOp::kIsBridge;
        req.u = u;
        req.v = v;
        std::vector<uint8_t> frame, reply;
        serve::EncodeServeRequest(req, &frame);
        server.HandleFrame(frame, &reply);
        auto resp = serve::DecodeServeResponse(reply);
        if (!resp.ok()) return DecodeFailed(resp.status());
        if (resp->code != StatusCode::kOk) {
          return DecodeFailed(resp->status());
        }
        const bool want =
            u != v && exact_bridges.HasEdge(Hyperedge(std::vector<VertexId>{
                          std::min(u, v), std::max(u, v)}));
        if ((resp->value != 0) != want) {
          return Disagree("bridge_query: edge {" + std::to_string(u) + "," +
                          std::to_string(v) + "} sketch=" +
                          (resp->value ? "bridge" : "not bridge") +
                          " exact=" + (want ? "bridge" : "not bridge"));
        }
      }
      return OracleOutcome();
    }
  }
  return Disagree("unknown oracle kind");
}

OracleOutcome RunOracle(OracleKind kind, const StreamSpec& spec,
                        uint64_t sketch_seed, const OracleOptions& opt) {
  BuiltStream built = spec.Build();
  OracleOutcome out =
      RunOracleOnStream(kind, spec.n, built.max_rank, built.stream,
                        built.final_graph, built.separator, sketch_seed, opt);
  if (!out.Succeeded() && out.applicable) {
    out.detail = std::string(OracleName(kind)) + ";sketch_seed=" +
                 std::to_string(sketch_seed) + ";" + spec.ToString() + " :: " +
                 out.detail;
  }
  return out;
}

WilsonInterval Wilson(size_t successes, size_t trials, double z) {
  WilsonInterval w;
  if (trials == 0) return w;  // vacuous [0, 1]
  const double nt = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / nt;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nt;
  const double center = phat + z2 / (2.0 * nt);
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / nt + z2 / (4.0 * nt * nt));
  w.lo = std::max(0.0, (center - margin) / denom);
  w.hi = std::min(1.0, (center + margin) / denom);
  return w;
}

SweepResult RunSweep(OracleKind kind, const StreamSpec& base, size_t trials,
                     const OracleOptions& opt) {
  SweepResult result;
  for (size_t t = 0; t < trials; ++t) {
    StreamSpec spec = base.WithTrial(t);
    uint64_t sketch_seed =
        Mix64(base.gseed ^ (0xa5a5a5a5a5a5a5a5ULL + 2 * t + 1));
    OracleOutcome out = RunOracle(kind, spec, sketch_seed, opt);
    if (!out.applicable) continue;
    ++result.trials;
    if (out.Succeeded()) {
      ++result.successes;
    } else {
      if (out.decode_failure) {
        ++result.decode_failures;
      } else {
        ++result.disagreements;
      }
      result.failures.push_back(out.detail);
    }
  }
  return result;
}

}  // namespace testkit
}  // namespace gms
