// Tunable constants for the sketching stack. The paper's constants
// (Section 3: R = 16 k^2 ln n, etc.) guarantee 1 - 1/poly(n) success but
// are far larger than what laptop-scale experiments need; every algorithm
// takes a config with presets:
//   Paper()  -- constants as stated in the paper (huge, for small n only),
//   Default()-- empirically reliable at the benchmark scales,
//   Light()  -- minimum-footprint settings for space-scaling sweeps.
#ifndef GMS_SKETCH_SKETCH_CONFIG_H_
#define GMS_SKETCH_SKETCH_CONFIG_H_

#include <cstdint>

#include "util/status.h"

namespace gms {

namespace wire {
class Writer;
class Reader;
}  // namespace wire

struct SketchConfig {
  /// s-sparse recovery capacity per subsampling level (the structure decodes
  /// any vector with support <= sparse_capacity).
  int sparse_capacity = 3;

  /// Hash rows in the s-sparse recovery (IBLT-style peeling needs >= 2;
  /// 3 gives near-certain peeling at load 1/2).
  int rows = 2;

  /// Buckets per row as a multiple of sparse_capacity.
  int buckets_per_capacity = 2;

  /// Extra Borůvka rounds beyond ceil(log2 n) in the spanning-forest sketch
  /// (each round uses an independent sketch column; extras absorb per-round
  /// sampler failures).
  int extra_boruvka_rounds = 4;

  /// Hybrid sparse/dense representation: a vertex column buffers its first
  /// sparse_threshold updates exactly (signed adjacency, no field
  /// arithmetic) and escalates to the dense L0 arena by replaying the
  /// buffer once the count exceeds the threshold. 0 disables the sparse
  /// phase entirely (dense-from-the-start, the pre-hybrid behaviour).
  uint32_t sparse_threshold = 32;

  int BucketsPerRow() const { return sparse_capacity * buckets_per_capacity; }

  static SketchConfig Default() { return SketchConfig{}; }

  static SketchConfig Light() {
    SketchConfig c;
    c.sparse_capacity = 2;
    c.rows = 2;
    c.extra_boruvka_rounds = 2;
    return c;
  }

  static SketchConfig Paper() {
    SketchConfig c;
    c.sparse_capacity = 8;
    c.rows = 3;
    c.extra_boruvka_rounds = 8;
    c.sparse_threshold = 0;  // the paper's sketch is purely linear
    return c;
  }
};

/// Wire helpers: a config is part of every sketch frame's shape header (the
/// shape is rebuilt from seed + config on deserialize).
void WriteSketchConfig(const SketchConfig& config, wire::Writer* w);
Status ReadSketchConfig(wire::Reader* r, SketchConfig* config);

}  // namespace gms

#endif  // GMS_SKETCH_SKETCH_CONFIG_H_
