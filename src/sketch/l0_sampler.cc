#include "sketch/l0_sampler.h"

#include "util/check.h"
#include "util/random.h"

namespace gms {

L0Shape::L0Shape(u128 domain, const SketchConfig& config, uint64_t seed)
    : domain_(domain) {
  GMS_CHECK_MSG(domain >= 1, "empty domain");
  Rng rng(seed);
  int max_level = BitWidth128(domain);  // levels 0..max_level
  level_hash_ = LevelHash(rng.Fork(), max_level);
  selection_hash_ = PolyHash(/*independence=*/2, rng.Fork());
  levels_.reserve(static_cast<size_t>(max_level) + 1);
  for (int j = 0; j <= max_level; ++j) {
    levels_.emplace_back(domain, config.sparse_capacity, config.rows,
                         config.BucketsPerRow(), rng.Fork());
  }
}

size_t L0Shape::TotalCells() const {
  size_t total = 0;
  for (const auto& shape : levels_) {
    total += static_cast<size_t>(shape.NumCells());
  }
  return total;
}

L0State::L0State(const L0Shape* shape) : shape_(shape) {
  levels_.reserve(static_cast<size_t>(shape->num_levels()));
  for (int j = 0; j < shape->num_levels(); ++j) {
    levels_.emplace_back(&shape->level_shape(j));
  }
}

void L0State::Update(u128 index, int64_t delta) {
  GMS_DCHECK(index < shape_->domain());
  levels_[static_cast<size_t>(shape_->LevelOf(index))].Update(index, delta);
}

void L0State::Add(const L0State& other) {
  GMS_CHECK_MSG(shape_ == other.shape_, "adding L0 states of different shapes");
  for (size_t j = 0; j < levels_.size(); ++j) levels_[j].Add(other.levels_[j]);
}

bool L0State::IsZero() const {
  for (const auto& level : levels_) {
    if (!level.IsZero()) return false;
  }
  return true;
}

Result<SparseEntry> L0State::Sample() const {
  bool saw_nonzero = false;
  // Scan from the sparsest (highest) level down; the first level whose
  // recovery decodes a nonempty support yields the sample.
  for (int j = shape_->num_levels() - 1; j >= 0; --j) {
    const SSparseState& level = levels_[static_cast<size_t>(j)];
    if (level.IsZero()) continue;
    saw_nonzero = true;
    auto decoded = level.Decode();
    if (!decoded.ok()) continue;  // too dense here; try a denser level anyway
    const auto& entries = *decoded;
    if (entries.empty()) continue;
    // Pick the entry with the smallest selection hash: a symmetric choice,
    // so the returned coordinate is (approximately) uniform on the support.
    const SparseEntry* best = &entries[0];
    uint64_t best_h = shape_->SelectionHash(entries[0].index);
    for (size_t t = 1; t < entries.size(); ++t) {
      uint64_t h = shape_->SelectionHash(entries[t].index);
      if (h < best_h) {
        best_h = h;
        best = &entries[t];
      }
    }
    return *best;
  }
  if (!saw_nonzero) {
    return Status::DecodeFailure("vector is zero (nothing to sample)");
  }
  return Status::DecodeFailure("no decodable level");
}

Result<std::vector<SparseEntry>> L0State::TryRecoverLevel(int level) const {
  GMS_CHECK(level >= 0 && level < shape_->num_levels());
  return levels_[static_cast<size_t>(level)].Decode();
}

size_t L0State::MemoryBytes() const {
  size_t total = sizeof(*this);
  for (const auto& level : levels_) total += level.MemoryBytes();
  return total;
}

}  // namespace gms
