#include "sketch/l0_sampler.h"

#include <algorithm>
#include <bit>

#include "util/check.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {

L0Shape::L0Shape(u128 domain, const SketchConfig& config, uint64_t seed)
    : domain_(domain) {
  GMS_CHECK_MSG(domain >= 1, "empty domain");
  Rng rng(seed);
  int max_level = BitWidth128(domain);  // levels 0..max_level
  level_hash_ = LevelHash(rng.Fork(), max_level);
  selection_hash_ = PolyHash(/*independence=*/2, rng.Fork());
  basis_ =
      std::make_shared<FingerprintBasis>(rng.Below(kMersenne61 - 2) + 1);
  levels_.reserve(static_cast<size_t>(max_level) + 1);
  for (int j = 0; j <= max_level; ++j) {
    levels_.emplace_back(domain, config.sparse_capacity, config.rows,
                         config.BucketsPerRow(), rng.Fork(), basis_);
  }
  segment_words_ = SSparseSegmentWords(levels_[0]);
}

size_t L0Shape::TotalCells() const {
  size_t total = 0;
  for (const auto& shape : levels_) {
    total += static_cast<size_t>(shape.NumCells());
  }
  return total;
}

L0State::L0State(const L0Shape* shape)
    : shape_(shape), buf_(shape->TotalWords(), 0) {}

void L0State::Update(u128 index, int64_t delta) {
  GMS_DCHECK(index < shape_->domain());
  const PreparedCoord pc = PrepareCoord(index);
  const int level = shape_->LevelOfFolded(pc.fold);
  // The basis is shared across levels, so the power does not depend on
  // which level the coordinate routes to.
  UpdatePrepared(pc, delta, level, shape_->basis().PowerFromExp(pc.exponent));
}

void L0State::Add(const L0State& other) {
  GMS_CHECK_MSG(shape_ == other.shape_, "adding L0 states of different shapes");
  AddRaw(other.buf_.data());
}

void L0State::AddRaw(const uint64_t* buf) {
  L0AddRaw(*shape_, buf_.data(), buf);
}

void L0AddRaw(const L0Shape& shape, uint64_t* dst, const uint64_t* src) {
  const size_t words = shape.SegmentWords();
  for (int j = 0; j < shape.num_levels(); ++j) {
    SSparseSegmentAdd(shape.level_shape(j),
                      dst + static_cast<size_t>(j) * words,
                      src + static_cast<size_t>(j) * words);
  }
}

size_t L0AddRawMasked(const L0Shape& shape, uint64_t* dst,
                      const uint64_t* src, uint64_t mask) {
  const size_t words = shape.SegmentWords();
  const int num_levels = shape.num_levels();
  const int capped = num_levels < 63 ? num_levels : 63;
  size_t touched = 0;
  uint64_t low = mask & ~(uint64_t{1} << 63);
  while (low != 0) {
    const int j = std::countr_zero(low);
    low &= low - 1;
    if (j >= capped) break;  // set bits past the level count are vacuous
    SSparseSegmentAdd(shape.level_shape(j),
                      dst + static_cast<size_t>(j) * words,
                      src + static_cast<size_t>(j) * words);
    touched += words;
  }
  if ((mask >> 63) != 0) {
    for (int j = 63; j < num_levels; ++j) {  // bit 63 covers all of these
      SSparseSegmentAdd(shape.level_shape(j),
                        dst + static_cast<size_t>(j) * words,
                        src + static_cast<size_t>(j) * words);
      touched += words;
    }
  }
  return touched;
}

bool L0State::IsZero() const {
  return std::all_of(buf_.begin(), buf_.end(),
                     [](uint64_t v) { return v == 0; });
}

Result<SparseEntry> L0State::Sample() const {
  return L0SampleRaw(*shape_, buf_.data());
}

Result<SparseEntry> L0SampleRaw(const L0Shape& shape, const uint64_t* buf,
                                L0SampleProbe* probe) {
  return L0SampleRawMasked(shape, buf, ~uint64_t{0}, probe);
}

Result<SparseEntry> L0SampleRawMasked(const L0Shape& shape,
                                      const uint64_t* buf, uint64_t mask,
                                      L0SampleProbe* probe) {
  static thread_local SSparseDecoder decoder;
  const size_t words = shape.SegmentWords();
  bool saw_nonzero = false;
  int decode_attempts = 0;
  // Scan from the sparsest (highest) level down; the first level whose
  // recovery decodes a nonempty support yields the sample. Levels the mask
  // clears are guaranteed zero and skip straight past the zero check.
  for (int j = shape.num_levels() - 1; j >= 0; --j) {
    if ((mask & LevelMaskBit(j)) == 0) continue;
    const uint64_t* seg = buf + static_cast<size_t>(j) * words;
    if (std::all_of(seg, seg + words, [](uint64_t v) { return v == 0; })) {
      continue;
    }
    saw_nonzero = true;
    ++decode_attempts;
    auto decoded = decoder.Decode(shape.level_shape(j), seg);
    if (!decoded.ok()) continue;  // too dense here; try a denser level anyway
    const auto& entries = *decoded;
    if (entries.empty()) continue;
    if (probe != nullptr) {
      probe->decode_attempts = decode_attempts;
      probe->saw_nonzero = saw_nonzero;
    }
    // Pick the entry with the smallest selection hash: a symmetric choice,
    // so the returned coordinate is (approximately) uniform on the support.
    const SparseEntry* best = &entries[0];
    uint64_t best_h = shape.SelectionHash(entries[0].index);
    for (size_t t = 1; t < entries.size(); ++t) {
      uint64_t h = shape.SelectionHash(entries[t].index);
      if (h < best_h) {
        best_h = h;
        best = &entries[t];
      }
    }
    return *best;
  }
  if (probe != nullptr) {
    probe->decode_attempts = decode_attempts;
    probe->saw_nonzero = saw_nonzero;
  }
  if (!saw_nonzero) {
    return Status::DecodeFailure("vector is zero (nothing to sample)");
  }
  return Status::DecodeFailure("no decodable level");
}

Result<std::vector<SparseEntry>> L0State::TryRecoverLevel(int level) const {
  GMS_CHECK(level >= 0 && level < shape_->num_levels());
  static thread_local SSparseDecoder decoder;
  return decoder.Decode(shape_->level_shape(level), LevelSegment(level));
}

size_t L0State::MemoryBytes() const {
  return sizeof(*this) + buf_.size() * sizeof(uint64_t);
}

void L0State::Clear() { std::fill(buf_.begin(), buf_.end(), 0); }

uint64_t L0StateWords(u128 domain, const SketchConfig& config) {
  // Mirrors L0Shape: levels 0..BitWidth128(domain), each an s-sparse segment
  // of rows * BucketsPerRow cells at 4 words per cell. ReadSketchConfig caps
  // every factor (and the capacity * buckets product), so this fits u64.
  const uint64_t levels = static_cast<uint64_t>(BitWidth128(domain)) + 1;
  return levels * 4ull * static_cast<uint64_t>(config.rows) *
         static_cast<uint64_t>(config.sparse_capacity) *
         static_cast<uint64_t>(config.buckets_per_capacity);
}

L0Sampler::L0Sampler(u128 domain, const Params& config, uint64_t seed)
    : seed_(seed),
      config_(config),
      shape_(std::make_shared<const L0Shape>(domain, config, seed)),
      state_(shape_.get()) {}

void L0Sampler::Process(std::span<const L0Update> updates) {
  for (const L0Update& u : updates) Update(u.index, u.delta);
}

void L0Sampler::Escalate() {
  // Exact replay: state is linear, so summing the NET weight per
  // coordinate yields cells bit-identical to applying the original
  // updates one by one (no count cell can wrap on a stream-reachable
  // buffer).
  for (const SparseEntry& entry : buffer_) {
    state_.Update(entry.index, entry.value);
  }
  buffer_.clear();
  buffer_.shrink_to_fit();
}

void L0Sampler::AbsorbUpdate(u128 index, int64_t delta) {
  const uint32_t threshold = config_.sparse_threshold;
  if (count_ >= threshold) {
    count_ = threshold + 1;
    Escalate();
    state_.Update(index, delta);
    return;
  }
  ++count_;
  SparseBufferAdd(&buffer_, index, delta);
}

Result<SparseEntry> L0Sampler::Sample() const {
  if (!Escalated()) {
    if (buffer_.empty()) {
      return Status::DecodeFailure("vector is zero (nothing to sample)");
    }
    const SparseEntry* best = &buffer_[0];
    uint64_t best_h = shape_->SelectionHash(buffer_[0].index);
    for (size_t i = 1; i < buffer_.size(); ++i) {
      const uint64_t h = shape_->SelectionHash(buffer_[i].index);
      if (h < best_h) {
        best_h = h;
        best = &buffer_[i];
      }
    }
    return *best;
  }
  return state_.Sample();
}

Status L0Sampler::MergeFrom(const L0Sampler& other) {
  // Config geometry is part of the measurement: distinct (capacity, rows,
  // buckets) combinations can tie on total word count while laying cells
  // out differently, so the word-count check alone is not enough. The
  // sparse threshold is part of it too: it decides the phase boundary, so
  // merging different thresholds would break merge/serial equivalence.
  if (seed_ != other.seed_ || shape_->domain() != other.shape_->domain() ||
      config_.sparse_capacity != other.config_.sparse_capacity ||
      config_.rows != other.config_.rows ||
      config_.buckets_per_capacity != other.config_.buckets_per_capacity ||
      config_.sparse_threshold != other.config_.sparse_threshold ||
      state_.NumWords() != other.state_.NumWords()) {
    return Status::InvalidArgument(
        "L0Sampler::MergeFrom: seed/shape mismatch (different measurement)");
  }
  // Phase lattice, as in the forest sketch: counters add saturating at
  // threshold + 1, buffers concat-and-cancel, a combined count past the
  // threshold escalates by exact replay.
  const uint32_t threshold = config_.sparse_threshold;
  if (Escalated()) {
    if (!other.Escalated()) {
      for (const SparseEntry& entry : other.buffer_) {
        state_.Update(entry.index, entry.value);
      }
      return Status::OK();
    }
  } else if (other.Escalated()) {
    count_ = threshold + 1;
    Escalate();
  } else {
    if (other.count_ == 0) return Status::OK();
    const uint32_t combined = count_ + other.count_;  // both <= threshold
    for (const SparseEntry& entry : other.buffer_) {
      SparseBufferAdd(&buffer_, entry.index, entry.value);
    }
    if (combined > threshold) {
      count_ = threshold + 1;
      Escalate();
      return Status::OK();
    }
    count_ = combined;
    return Status::OK();
  }
  state_.AddRaw(other.state_.data());
  return Status::OK();
}

void L0Sampler::Serialize(std::vector<uint8_t>* out) const {
  wire::FrameBuilder fb(wire::FrameType::kL0Sampler, out);
  fb.writer().U128(shape_->domain());
  fb.writer().U64(seed_);
  WriteSketchConfig(config_, &fb.writer());
  fb.EndHeader();
  if (config_.sparse_threshold == 0) {
    // Dense-from-the-start: a v1-style raw word dump behind the repr byte.
    fb.writer().U8(0);
    fb.writer().Words(state_.data(), state_.NumWords());
  } else {
    // Hybrid: the counter travels so the phase survives a round trip.
    fb.writer().U8(1);
    fb.writer().U32(count_);
    if (Escalated()) {
      fb.writer().Words(state_.data(), state_.NumWords());
    } else {
      fb.writer().U32(static_cast<uint32_t>(buffer_.size()));
      for (const SparseEntry& entry : buffer_) {
        fb.writer().U128(entry.index);
        fb.writer().U64(static_cast<uint64_t>(entry.value));
      }
    }
  }
  fb.Finish();
}

Result<L0Sampler> L0Sampler::Deserialize(std::span<const uint8_t> bytes) {
  auto frame = wire::ParseFrame(bytes, wire::FrameType::kL0Sampler);
  if (!frame.ok()) return frame.status();
  wire::Reader header(frame->header);
  u128 domain = 0;
  uint64_t seed = 0;
  SketchConfig config;
  GMS_RETURN_IF_ERROR(header.U128(&domain));
  GMS_RETURN_IF_ERROR(header.U64(&seed));
  GMS_RETURN_IF_ERROR(ReadSketchConfig(&header, &config));
  GMS_RETURN_IF_ERROR(header.ExpectEnd());
  if (domain < 1 || (domain >> 126) != 0) {
    return Status::InvalidArgument("wire: L0 domain out of range");
  }
  const uint64_t words = L0StateWords(domain, config);
  const uint32_t threshold = config.sparse_threshold;
  wire::Reader payload(frame->payload);
  uint8_t repr = 0;
  GMS_RETURN_IF_ERROR(payload.U8(&repr));
  if (repr == 0) {
    if (threshold != 0) {
      return Status::InvalidArgument(
          "wire: dense L0 cells under a sparse-threshold config");
    }
    // Size check BEFORE construction: the state allocation is then bounded
    // by the bytes the caller actually supplied.
    if (!wire::PayloadMatchesShape(frame->payload.size() - 1, {words})) {
      return Status::InvalidArgument("wire: L0 payload size mismatch");
    }
    L0Sampler sampler(domain, config, seed);
    GMS_RETURN_IF_ERROR(
        payload.Words(sampler.state_.data(), sampler.state_.NumWords()));
    GMS_RETURN_IF_ERROR(payload.ExpectEnd());
    return sampler;
  }
  if (repr != 1) {
    return Status::InvalidArgument("wire: unknown L0 cell repr");
  }
  if (threshold == 0) {
    return Status::InvalidArgument(
        "wire: hybrid L0 cells under a dense config");
  }
  uint32_t counter = 0;
  GMS_RETURN_IF_ERROR(payload.U32(&counter));
  if (counter > threshold + 1) {
    return Status::InvalidArgument(
        "wire: L0 sparse counter above saturation");
  }
  if (counter > threshold) {
    // Escalated: raw words follow, so the frame still bounds the state.
    if (!wire::PayloadMatchesShape(frame->payload.size() - 5, {words})) {
      return Status::InvalidArgument("wire: L0 payload size mismatch");
    }
    L0Sampler sampler(domain, config, seed);
    sampler.count_ = counter;
    GMS_RETURN_IF_ERROR(
        payload.Words(sampler.state_.data(), sampler.state_.NumWords()));
    GMS_RETURN_IF_ERROR(payload.ExpectEnd());
    return sampler;
  }
  // Sparse: a tiny frame commands a full (zero) state allocation, so the
  // frame size no longer bounds it -- cap the shape instead. Real configs
  // sit far below this; only hostile headers trip it.
  if (words > (uint64_t{1} << 26)) {
    return Status::InvalidArgument(
        "wire: sparse L0 frame over a shape too large to commit");
  }
  uint32_t entry_count = 0;
  GMS_RETURN_IF_ERROR(payload.U32(&entry_count));
  if (entry_count > counter) {
    return Status::InvalidArgument(
        "wire: L0 buffer larger than its update counter");
  }
  if (frame->payload.size() !=
      9 + static_cast<uint64_t>(entry_count) * 24) {
    return Status::InvalidArgument("wire: L0 payload size mismatch");
  }
  L0Sampler sampler(domain, config, seed);
  sampler.count_ = counter;
  sampler.buffer_.reserve(entry_count);
  u128 prev_key = 0;
  for (uint32_t i = 0; i < entry_count; ++i) {
    u128 key = 0;
    uint64_t value_bits = 0;
    GMS_RETURN_IF_ERROR(payload.U128(&key));
    GMS_RETURN_IF_ERROR(payload.U64(&value_bits));
    // Canonical form only: strictly ascending keys inside the domain, no
    // explicit zeros. Anything else cannot have come from Serialize.
    if (i > 0 && key <= prev_key) {
      return Status::InvalidArgument(
          "wire: L0 sparse buffer keys out of order");
    }
    if (key >= domain) {
      return Status::InvalidArgument(
          "wire: L0 sparse key outside the domain");
    }
    if (value_bits == 0) {
      return Status::InvalidArgument(
          "wire: L0 sparse entry with zero weight");
    }
    prev_key = key;
    sampler.buffer_.push_back(
        SparseEntry{key, static_cast<int64_t>(value_bits)});
  }
  GMS_RETURN_IF_ERROR(payload.ExpectEnd());
  return sampler;
}

size_t L0Sampler::SpaceBytes() const {
  std::vector<uint8_t> frame;
  Serialize(&frame);
  return frame.size();
}

}  // namespace gms
