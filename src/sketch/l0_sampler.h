// L0-sampling (Jowhari-Saglam-Tardos style): sample a (pseudo-)uniform
// nonzero coordinate of a dynamically-updated integer vector using
// polylog-size linear state.
//
// Construction: a pairwise-independent level hash partitions the index
// domain into geometric levels (P[level = j] ~ 2^-(j-1)); each level keeps
// an s-sparse recovery of the coordinates assigned to it. Whatever the
// support size F0, some level receives between 1 and s surviving
// coordinates in expectation, and its recovery decodes them exactly; the
// sampler returns the recovered coordinate with the smallest selection
// hash (stable and symmetric across coordinates, hence pseudo-uniform).
//
// Like the sparse-recovery layer, the randomness lives in a shared
// L0Shape; L0States of the same shape are linear and summable. This is the
// substrate for every sketch in the paper (Theorems 2, 13, 14, 15, 20).
#ifndef GMS_SKETCH_L0_SAMPLER_H_
#define GMS_SKETCH_L0_SAMPLER_H_

#include <memory>
#include <span>
#include <vector>

#include "sketch/sketch_config.h"
#include "sketch/sparse_recovery.h"
#include "util/hash.h"
#include "util/status.h"

namespace gms {

class L0Shape {
 public:
  /// domain: exclusive upper bound on coordinate indices (< 2^126).
  L0Shape(u128 domain, const SketchConfig& config, uint64_t seed);

  u128 domain() const { return domain_; }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  const SSparseShape& level_shape(int j) const { return levels_[j]; }

  /// All levels share one geometry, so every level segment has this many
  /// words; level j's segment starts at j * SegmentWords() in an L0State's
  /// flat buffer.
  size_t SegmentWords() const { return segment_words_; }
  size_t TotalWords() const { return segment_words_ * levels_.size(); }

  /// One fingerprint basis (z + 16 KiB power table) is shared by ALL
  /// levels: fingerprints never mix across levels and the per-cell
  /// collision bound is a union bound, so independent z per level buys
  /// nothing -- while sharing keeps the hot table resident instead of
  /// cycling ~log(domain) tables through cache.
  const FingerprintBasis& basis() const { return *basis_; }

  /// Which level an index belongs to (partition semantics: exactly one).
  int LevelOf(u128 index) const { return level_hash_.Level(index); }

  /// As LevelOf with the key folded once by the caller (the fold is
  /// hash-independent, so it is shared with the row hashes below).
  int LevelOfFolded(FoldedKey fold) const {
    return level_hash_.LevelFolded(fold);
  }

  /// Selection hash used to break ties uniformly among recovered entries.
  uint64_t SelectionHash(u128 index) const {
    return Mix64(selection_hash_.Eval(index));
  }

  /// Cells across all levels (for space accounting).
  size_t TotalCells() const;

 private:
  u128 domain_;
  LevelHash level_hash_;
  PolyHash selection_hash_;
  std::shared_ptr<const FingerprintBasis> basis_;
  std::vector<SSparseShape> levels_;
  size_t segment_words_ = 0;
};

class L0State {
 public:
  explicit L0State(const L0Shape* shape);

  /// Apply a linear update: vector[index] += delta.
  void Update(u128 index, int64_t delta);

  /// As Update, with the coordinate prepared and the level and fingerprint
  /// power precomputed by the caller (they depend only on the shared shape,
  /// so callers updating many states with the same coordinate compute them
  /// once). This is the whole ingest hot path: one computed offset into the
  /// state's single flat buffer, then the segment kernel.
  void UpdatePrepared(const PreparedCoord& pc, int64_t delta, int level,
                      uint64_t power) {
    SSparseSegmentUpdate(
        shape_->level_shape(level),
        buf_.data() + static_cast<size_t>(level) * shape_->SegmentWords(), pc,
        delta, power);
  }

  /// Coordinate-wise addition of another state of the same shape.
  void Add(const L0State& other);

  /// Coordinate-wise addition of a raw flat buffer with this state's exact
  /// layout (shape->TotalWords() words, level segments in order). Lets
  /// containers that pack many L0 measurements into one arena (the forest
  /// sketch) accumulate without materializing L0State objects.
  void AddRaw(const uint64_t* buf);

  bool IsZero() const;

  /// Sample one nonzero coordinate. DecodeFailure if the vector is nonzero
  /// at no decodable level (the sketch's whp failure event), or if the
  /// vector appears to be zero everywhere.
  Result<SparseEntry> Sample() const;

  /// Recover the entire support if some single level holds all of it
  /// (useful for tests); normally callers should use Sample().
  Result<std::vector<SparseEntry>> TryRecoverLevel(int level) const;

  size_t MemoryBytes() const;

  /// Zero every cell (the measurement of the empty stream).
  void Clear();

  /// The flat cell buffer (shape->TotalWords() words; see sparse_recovery.h
  /// for the per-segment layout). Wire payloads are exactly these words.
  size_t NumWords() const { return buf_.size(); }
  const uint64_t* data() const { return buf_.data(); }
  uint64_t* data() { return buf_.data(); }

  /// Cell-wise equality across all levels (bit-identity of the measurement
  /// value; shapes may be distinct objects with the same randomness).
  friend bool operator==(const L0State& a, const L0State& b) {
    return a.buf_ == b.buf_;
  }

  const L0Shape& shape() const { return *shape_; }

  /// Level j's segment within the flat buffer (the four-array s-sparse
  /// layout; see sparse_recovery.h).
  const uint64_t* LevelSegment(int j) const {
    return buf_.data() + static_cast<size_t>(j) * shape_->SegmentWords();
  }

 private:
  const L0Shape* shape_;
  // All ~log(domain) level measurements packed into ONE allocation (levels
  // share a geometry, so segment offsets are a multiply). Random-vertex
  // ingest then costs two dependent cache misses (state object, segment
  // data) instead of chasing state -> level vector -> per-level heap cell
  // arrays.
  std::vector<uint64_t> buf_;
};

/// One linear coordinate update (the L0 sampler's "stream element").
struct L0Update {
  u128 index = 0;
  int64_t delta = 0;
};

/// Instrumentation from one L0SampleRaw call (for the extraction-engine
/// bench breakdown and the early-exit rule of the Borůvka decoder).
struct L0SampleProbe {
  /// s-sparse decode attempts (nonzero levels scanned).
  int decode_attempts = 0;
  /// Any level segment held a nonzero word. False means the sketched
  /// vector is (almost surely) identically zero -- retrying the same
  /// vector under fresh randomness cannot help.
  bool saw_nonzero = false;
};

/// Sample one nonzero coordinate straight from a raw flat buffer with the
/// shape's exact layout (shape.TotalWords() words, level segments in
/// order). This is L0State::Sample() without the L0State: containers that
/// pack many measurements into one arena (the forest sketch) sample
/// singleton components directly from their arena rows, skipping the
/// alloc + zero + add of a materialized accumulator.
Result<SparseEntry> L0SampleRaw(const L0Shape& shape, const uint64_t* buf,
                                L0SampleProbe* probe = nullptr);

/// Field-add `src` into `dst`, both raw flat buffers of this shape's
/// layout. Exact cell-wise addition (wrapping weights, mod-2^128 index
/// sums, mod-p fingerprints): associative and commutative, so ANY
/// accumulation order yields bit-identical stored values.
void L0AddRaw(const L0Shape& shape, uint64_t* dst, const uint64_t* src);

/// Level-mask summaries: bit min(j, 63) of a 64-bit mask covers level j,
/// so one word conservatively describes which level segments of a state
/// can be nonzero even for >64-level shapes (all levels >= 63 share bit
/// 63). A CLEAR bit guarantees the segment is identically zero; a set bit
/// promises nothing. Ingest paths maintain these per column (each update
/// routes to exactly one level), and the extraction/merge paths below then
/// skip the guaranteed-zero segments -- which for a low-degree vertex is
/// most of the state, since incident edges hash to ~log(degree) of the
/// ~log(domain) levels.
constexpr uint64_t LevelMaskBit(int level) {
  return uint64_t{1} << (level < 63 ? level : 63);
}

/// As L0AddRaw restricted to the levels `mask` marks. Clear bits are
/// guaranteed-zero segments of `src`, and adding zero is the field
/// identity, so the stored result is bit-identical to the dense add.
/// Returns the words actually touched (for extraction work accounting).
size_t L0AddRawMasked(const L0Shape& shape, uint64_t* dst,
                      const uint64_t* src, uint64_t mask);

/// As L0SampleRaw, skipping levels `mask` marks clear. The dense scan
/// would skip exactly those levels through its all-zero segment check, so
/// the sample AND the probe are bit-identical to L0SampleRaw -- the mask
/// only removes the wasted zero-segment reads.
Result<SparseEntry> L0SampleRawMasked(const L0Shape& shape,
                                      const uint64_t* buf, uint64_t mask,
                                      L0SampleProbe* probe = nullptr);

/// Cell words of an L0State over this (domain, config) shape, computed by
/// pure arithmetic without constructing the shape. Must agree with
/// L0Shape::TotalWords() (asserted by the serde suite); deserializers use
/// it to compare a frame's shape-implied payload size against the actual
/// payload BEFORE allocating any state. The config must already be
/// validated (wire-sourced configs come through ReadSketchConfig).
uint64_t L0StateWords(u128 domain, const SketchConfig& config);

/// Self-contained L0 sampler: owns its shape (shared on copy) and one
/// state, and implements the library-wide mergeable-sketch concept --
/// Process / MergeFrom / Serialize / Deserialize / SpaceBytes / Clear /
/// seed() -- so the substrate type can travel on the wire and participate
/// in sharded-merge ingestion like the graph sketches built on it.
class L0Sampler {
 public:
  using Params = SketchConfig;

  L0Sampler(u128 domain, const Params& config, uint64_t seed);

  u128 domain() const { return shape_->domain(); }
  uint64_t seed() const { return seed_; }
  const L0Shape& shape() const { return *shape_; }
  const L0State& state() const { return state_; }

  /// Linear update: vector[index] += delta. With a nonzero
  /// config.sparse_threshold the first updates are buffered exactly (the
  /// sparse phase); past the threshold the buffer replays through the
  /// dense state once, bit-identical thereafter to dense-from-the-start.
  void Update(u128 index, int64_t delta) {
    if (Escalated()) {
      state_.Update(index, delta);
      return;
    }
    AbsorbUpdate(index, delta);
  }

  /// Batched ingestion (updates applied in order; serial -- one state has
  /// a single column, so parallel batching comes from sharded merge).
  void Process(std::span<const L0Update> updates);

  /// Sample one nonzero coordinate (see L0State::Sample). While sparse,
  /// the support is known EXACTLY, so the sample is the buffered entry
  /// with the smallest selection hash -- the same symmetric tie-break the
  /// dense decoder applies to a recovered level, with no failure event.
  Result<SparseEntry> Sample() const;

  /// Cell-wise field addition. Valid iff the other sampler carries the
  /// SAME measurement: equal seed, domain, and config. After a successful
  /// merge this sampler sketches the sum (multiset union) of both streams.
  Status MergeFrom(const L0Sampler& other);

  /// Zero the state (the empty-stream measurement); shape is untouched.
  /// Re-enters the sparse phase when the config has one.
  void Clear() {
    state_.Clear();
    count_ = 0;
    buffer_.clear();
    buffer_.shrink_to_fit();
  }

  /// True once this sampler left the sparse phase (or never had one).
  bool Escalated() const {
    return config_.sparse_threshold == 0 ||
           count_ > config_.sparse_threshold;
  }

  /// A sampler of the SAME measurement (shared shape, same seed) with zero
  /// state: the sharded-merge private clone. The state here is one small
  /// flat buffer, so copy + Clear is already allocation-optimal.
  L0Sampler CloneEmpty() const {
    L0Sampler clone(*this);
    clone.Clear();
    return clone;
  }

  /// Append one wire frame (wire::FrameType::kL0Sampler) to *out.
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parse a frame produced by Serialize. Truncation, corruption, and
  /// out-of-range shape fields return Status; never aborts.
  static Result<L0Sampler> Deserialize(std::span<const uint8_t> bytes);

  /// Measured size of the serialized frame in bytes (the protocol message
  /// size; this is what comm/ reports as bytes on the wire).
  size_t SpaceBytes() const;

  /// Equal measurement VALUE: dense cells plus the exact sparse buffer.
  /// The saturating update counter is deliberately excluded -- a stream
  /// and its inverse return the state to the empty measurement even
  /// though the counter remembers the traffic (the serde suite pins the
  /// counter at serialized-frame strength instead).
  bool StateEquals(const L0Sampler& other) const {
    return state_ == other.state_ && buffer_ == other.buffer_;
  }

 private:
  /// Sparse-phase slow path: buffer the update, escalating at the
  /// threshold crossing (replay the buffer, then apply densely).
  void AbsorbUpdate(u128 index, int64_t delta);
  /// Replay the exact buffer through the dense state and drop it.
  void Escalate();

  uint64_t seed_;
  Params config_;
  std::shared_ptr<const L0Shape> shape_;
  L0State state_;
  /// Updates absorbed, saturating at sparse_threshold + 1 (escalated iff
  /// count_ > threshold). min(a + b, T + 1) is associative/commutative,
  /// so sharded merges escalate at the same total as the serial stream.
  uint32_t count_ = 0;
  /// Exact signed support while sparse (ascending index, net weights,
  /// entries cancel at zero); empty once escalated.
  std::vector<SparseEntry> buffer_;
};

}  // namespace gms

#endif  // GMS_SKETCH_L0_SAMPLER_H_
