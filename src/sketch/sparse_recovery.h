// Exact sparse recovery of dynamically-updated integer vectors over a huge
// implicit index domain (up to 2^120 coordinates).
//
// OneSparseCell is the classic (sum, index-weighted sum, fingerprint)
// triple: it decodes a vector that is exactly 1-sparse and detects (whp,
// via a random-evaluation fingerprint over F_{2^61-1}) every other case.
// SSparseRecovery hashes coordinates into rows x buckets of cells and
// decodes any vector of support <= capacity by IBLT-style peeling.
//
// Shapes vs. states: an SSparseShape holds the hash functions and
// fingerprint randomness; an SSparseState holds only the cells. All states
// sharing a shape implement the SAME linear measurement, so states can be
// added coordinate-wise -- this is what makes per-vertex sketches summable
// across a component in the AGM decode loop, and what lets k-skeleton /
// light-edge recovery subtract previously-recovered subgraphs (Section 4).
//
// Update kernel (the hot path every stream update funnels through):
//   * Fingerprint powers z^(e mod p-1) come from a windowed power table
//     (FingerprintBasis: z^(256^w * d) for window w in [0,8), digit d in
//     [0,256)): at most 8 table loads + 7 FpMul instead of a ~60-multiply
//     FpPow. The binary-exponentiation path survives as FingerprintPowerRef
//     for differential testing. A basis can be SHARED by many shapes (the
//     L0 sampler shares one across its ~log(domain) levels) -- soundness
//     only needs the per-cell fingerprint collision bound, which is a
//     union bound and does not require independent z per level.
//   * Bucket choice is division-free (Lemire multiply-shift, FieldToBucket)
//     and each 128-bit key is folded to field halves ONCE per update
//     (FoldedKey / PreparedCoord), shared across all row hashes and the
//     sampler's level hash instead of re-folding per row.
//   * Cells are stored structure-of-arrays in one contiguous "segment" of
//     four equal uint64 arrays (weight | index_sum.lo | index_sum.hi |
//     fingerprint). The segment kernels (SSparseSegment*) operate on raw
//     buffers so containers (the L0 sampler) can pack MANY measurements
//     into one allocation; SSparseState wraps a single owned segment.
//     Decode peels on a per-thread reusable scratch buffer (SSparseDecoder)
//     instead of allocating a cell-array copy per call.
#ifndef GMS_SKETCH_SPARSE_RECOVERY_H_
#define GMS_SKETCH_SPARSE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/field.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/uint128.h"

namespace gms {

/// One recovered coordinate: (index, value).
struct SparseEntry {
  u128 index = 0;
  int64_t value = 0;

  friend bool operator==(const SparseEntry&, const SparseEntry&) = default;
};

/// Sorted-insert one signed update into an exact sparse buffer (ascending
/// index, net weights), erasing the entry when its net weight reaches
/// zero. The weight sum wraps (like every count cell in the dense kernel),
/// so buffer merging stays associative and commutative even for hostile
/// out-of-range weights; stream-reachable weights never wrap, which is
/// what the hybrid escalation bit-identity argument needs.
void SparseBufferAdd(std::vector<SparseEntry>* buf, u128 key,
                     int64_t weight);

/// The 1-sparse recovery triple as a value type (states store these
/// structure-of-arrays; this view is used by the 1-sparse decode probe).
struct OneSparseCell {
  u128 index_sum = 0;       // sum of index*value, wrapping mod 2^128
  int64_t weight = 0;       // sum of values
  uint64_t fingerprint = 0; // sum of value * z^index over F_p

  void AddCell(const OneSparseCell& o) {
    weight += o.weight;
    index_sum += o.index_sum;
    fingerprint = FpAdd(fingerprint, o.fingerprint);
  }
  bool IsZero() const {
    return weight == 0 && index_sum == 0 && fingerprint == 0;
  }

  friend bool operator==(const OneSparseCell&, const OneSparseCell&) = default;
};

/// A coordinate index with its shape-independent per-update derivations:
/// the folded field halves (shared by every row/level hash) and the
/// exponent index mod p-1 (shared by every shape's fingerprint table).
/// Containers ingesting one coordinate into many sketches prepare it once.
struct PreparedCoord {
  u128 index = 0;
  FoldedKey fold;
  uint64_t exponent = 0;  // index mod (p - 1)
};

inline PreparedCoord PrepareCoord(u128 index) {
  return PreparedCoord{index, FoldKey128(index), FpReduceExp(index)};
}

/// Fingerprint randomness: a uniform nonzero field element z plus the
/// windowed table of its powers, z^(256^w * d) for w in [0,8), d in
/// [0,256). 8 windows of 8 bits cover any exponent < 2^64 >= p - 1, so a
/// power is <= 8 table loads + 7 multiplies. 16 KiB; share one basis
/// across shapes whose fingerprints never mix (e.g. L0 levels) to keep the
/// hot tables small.
class FingerprintBasis {
 public:
  explicit FingerprintBasis(uint64_t z);

  uint64_t z() const { return z_; }

  /// z^e for a reduced exponent e = index mod (p-1): the windowed product.
  uint64_t PowerFromExp(uint64_t e) const {
    const uint64_t* t = table_.data();
    uint64_t r = t[e & 0xff];
    for (int w = 1; w < kWindows; ++w) {
      r = FpMul(r, t[static_cast<size_t>(w) * kDigits + ((e >> (8 * w)) & 0xff)]);
    }
    return r;
  }

  /// Reference power by full binary exponentiation (the old kernel, with
  /// its hardware `%`). Differential tests assert PowerFromExp matches.
  uint64_t PowerRef(u128 index) const {
    return FpPow(z_, static_cast<uint64_t>(index % (kMersenne61 - 1)));
  }

 private:
  static constexpr int kWindows = 8;
  static constexpr int kDigits = 256;

  uint64_t z_;
  std::vector<uint64_t> table_;  // [window][digit] = z^(256^w * d)
};

/// Upper bound on rows per s-sparse structure (lets hot paths keep
/// resolved cell indices in a stack array). Far above any sensible config;
/// enforced at shape construction.
inline constexpr int kMaxSketchRows = 16;

/// Shared measurement definition for an s-sparse recovery structure.
class SSparseShape {
 public:
  /// domain: exclusive upper bound on coordinate indices (< 2^126).
  /// capacity: max support size decodable. rows/buckets control the peeling
  /// hash table (buckets should be >= 2 * capacity). Draws its own
  /// fingerprint basis from the seed.
  SSparseShape(u128 domain, int capacity, int rows, int buckets,
               uint64_t seed);

  /// As above but fingerprinting with a caller-provided (typically shared)
  /// basis; the seed feeds only the row hashes.
  SSparseShape(u128 domain, int capacity, int rows, int buckets, uint64_t seed,
               std::shared_ptr<const FingerprintBasis> basis);

  u128 domain() const { return domain_; }
  int capacity() const { return capacity_; }
  int rows() const { return rows_; }
  int buckets() const { return buckets_; }
  int NumCells() const { return rows_ * buckets_; }
  uint64_t z() const { return basis_->z(); }
  const FingerprintBasis& basis() const { return *basis_; }

  /// Bucket of `index` in row r.
  int Bucket(int row, u128 index) const {
    return BucketFolded(row, FoldKey128(index));
  }

  /// As Bucket with the key folded once by the caller (division-free
  /// Lemire reduction on the row hash's field output).
  int BucketFolded(int row, FoldedKey fold) const {
    return static_cast<int>(
        row_hash_[static_cast<size_t>(row)].EvalBelowFolded(
            fold, static_cast<uint32_t>(buckets_)));
  }

  /// Reference bucket via the pre-table kernel's hardware `%` reduction.
  /// NOT the bucket the sketch uses -- kept for the old-vs-new kernel bench
  /// and distribution tests.
  int BucketRef(int row, u128 index) const {
    return static_cast<int>(row_hash_[static_cast<size_t>(row)].Eval(index) %
                            static_cast<uint64_t>(buckets_));
  }

  /// z^(index mod p-1): the fingerprint basis value for a coordinate.
  uint64_t FingerprintPower(u128 index) const {
    return basis_->PowerFromExp(FpReduceExp(index));
  }

  /// As FingerprintPower with the exponent reduced once by the caller.
  uint64_t FingerprintPowerFromExp(uint64_t e) const {
    return basis_->PowerFromExp(e);
  }

  /// Reference fingerprint power by full binary exponentiation.
  uint64_t FingerprintPowerRef(u128 index) const {
    return basis_->PowerRef(index);
  }

 private:
  u128 domain_;
  int capacity_;
  int rows_;
  int buckets_;
  std::shared_ptr<const FingerprintBasis> basis_;
  std::vector<PolyHash> row_hash_;
};

// ---------------------------------------------------------------------------
// Raw segment kernels. A "segment" is one s-sparse measurement's cells laid
// out structure-of-arrays in 4 * NumCells consecutive uint64 words:
//   [weight | index_sum.lo | index_sum.hi | fingerprint]
// (row-major [row][bucket] within each component array). Weights live as
// two's-complement uint64 -- linear updates are wrapping adds either way --
// and index sums keep their mod-2^128 wrap via an explicit lo->hi carry.
// Containers may pack many segments into one allocation (see L0State).
// ---------------------------------------------------------------------------

/// Words in one segment of `shape`.
inline size_t SSparseSegmentWords(const SSparseShape& shape) {
  return static_cast<size_t>(shape.NumCells()) * 4;
}

/// The hot-path update: apply (coordinate, delta) to a segment, with the
/// coordinate prepared and the fingerprint power computed once by the
/// caller so several measurements ingesting the same coordinate share all
/// per-key arithmetic.
inline void SSparseSegmentUpdate(const SSparseShape& shape, uint64_t* seg,
                                 const PreparedCoord& pc, int64_t delta,
                                 uint64_t power) {
  GMS_DCHECK(pc.index < shape.domain());
  if (delta == 0) return;
  const uint64_t fp_delta = FpMul(FpFromInt64(delta), power);
  const u128 is_delta = pc.index * static_cast<u128>(static_cast<i128>(delta));
  const uint64_t is_lo = static_cast<uint64_t>(is_delta);
  const uint64_t is_hi = static_cast<uint64_t>(is_delta >> 64);
  const size_t cells = static_cast<size_t>(shape.NumCells());
  const int buckets = shape.buckets();
  uint64_t* w = seg;
  uint64_t* il = w + cells;
  uint64_t* ih = il + cells;
  uint64_t* fp = ih + cells;
  for (int r = 0; r < shape.rows(); ++r) {
    const size_t i = static_cast<size_t>(r) * buckets +
                     static_cast<size_t>(shape.BucketFolded(r, pc.fold));
    w[i] += static_cast<uint64_t>(delta);
    const uint64_t nl = il[i] + is_lo;
    ih[i] += is_hi + (nl < il[i] ? 1 : 0);
    il[i] = nl;
    fp[i] = FpAdd(fp[i], fp_delta);
  }
}

/// Apply precomputed per-cell deltas: for each of the `rows` cell indices
/// in `idx`, weight += wdelta, index_sum += is (mod 2^128), fingerprint +=
/// fp (over F_p). Callers that fan one key out to several endpoint
/// measurements (the incidence encoding: same buckets, same magnitudes,
/// only the sign differs) resolve the buckets and deltas once and invoke
/// this per endpoint.
inline void SSparseSegmentApply(uint64_t* seg, const size_t* idx, int rows,
                                size_t cells, int64_t wdelta, u128 is,
                                uint64_t fp) {
  const uint64_t is_lo = static_cast<uint64_t>(is);
  const uint64_t is_hi = static_cast<uint64_t>(is >> 64);
  uint64_t* w = seg;
  uint64_t* il = w + cells;
  uint64_t* ih = il + cells;
  uint64_t* fpp = ih + cells;
  for (int r = 0; r < rows; ++r) {
    const size_t i = idx[r];
    w[i] += static_cast<uint64_t>(wdelta);
    const uint64_t nl = il[i] + is_lo;
    ih[i] += is_hi + (nl < il[i] ? 1 : 0);
    il[i] = nl;
    fpp[i] = FpAdd(fpp[i], fp);
  }
}

/// seg += other, cell-wise (vector addition of the measured vectors).
void SSparseSegmentAdd(const SSparseShape& shape, uint64_t* seg,
                       const uint64_t* other);

/// Reassemble cell i of a segment as a value triple.
inline OneSparseCell SSparseSegmentCell(const SSparseShape& shape,
                                        const uint64_t* seg, size_t i) {
  const size_t cells = static_cast<size_t>(shape.NumCells());
  OneSparseCell c;
  c.weight = static_cast<int64_t>(seg[i]);
  c.index_sum =
      (static_cast<u128>(seg[2 * cells + i]) << 64) | seg[cells + i];
  c.fingerprint = seg[3 * cells + i];
  return c;
}

/// Cell array implementing the shape's measurement. Linear: supports
/// Update (insert/delete = +/- delta) and Add (vector addition). Owns a
/// single segment; see the segment kernels above for the layout.
class SSparseState {
 public:
  explicit SSparseState(const SSparseShape* shape);

  void Update(u128 index, int64_t delta) {
    const PreparedCoord pc = PrepareCoord(index);
    UpdatePrepared(pc, delta, shape_->FingerprintPowerFromExp(pc.exponent));
  }

  /// Hot-path update with caller-prepared coordinate and power.
  void UpdatePrepared(const PreparedCoord& pc, int64_t delta, uint64_t power) {
    SSparseSegmentUpdate(*shape_, buf_.data(), pc, delta, power);
  }

  void Add(const SSparseState& other);
  bool IsZero() const;

  /// Exact recovery by peeling. Returns the full support (index, value)
  /// pairs if the vector's support is <= capacity (whp); DecodeFailure if
  /// peeling gets stuck or a consistency check fails. Uses a per-thread
  /// reusable SSparseDecoder, so repeated decodes do not allocate.
  Result<std::vector<SparseEntry>> Decode() const;

  size_t MemoryBytes() const {
    return buf_.size() * sizeof(uint64_t) + sizeof(*this);
  }

  /// Cell-wise equality (same measurement VALUE; the shapes may be distinct
  /// objects). Used by the determinism suite to assert that parallel
  /// ingestion leaves bit-identical state.
  friend bool operator==(const SSparseState& a, const SSparseState& b) {
    return a.buf_ == b.buf_;
  }

  const SSparseShape& shape() const { return *shape_; }
  const uint64_t* segment() const { return buf_.data(); }
  uint64_t* segment() { return buf_.data(); }

 private:
  const SSparseShape* shape_;
  std::vector<uint64_t> buf_;  // one segment
};

/// Reusable peeling workspace: decodes any segment by copying it into owned
/// scratch (capacity persists across calls, so decoding in a loop -- the
/// Boruvka / sampler read path -- never reallocates). Not thread-safe; use
/// one per thread (SSparseState::Decode() keeps a thread_local instance).
class SSparseDecoder {
 public:
  Result<std::vector<SparseEntry>> Decode(const SSparseShape& shape,
                                          const uint64_t* seg);

  Result<std::vector<SparseEntry>> Decode(const SSparseState& state) {
    return Decode(state.shape(), state.segment());
  }

 private:
  std::vector<uint64_t> scratch_;  // same four-array layout as a segment
};

/// Attempt to decode a single cell as exactly-1-sparse.
/// Returns: 1 with *out filled if 1-sparse, 0 if zero, -1 if undecodable.
int DecodeOneSparse(const OneSparseCell& cell, const SSparseShape& shape,
                    SparseEntry* out);

}  // namespace gms

#endif  // GMS_SKETCH_SPARSE_RECOVERY_H_
