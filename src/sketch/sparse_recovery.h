// Exact sparse recovery of dynamically-updated integer vectors over a huge
// implicit index domain (up to 2^120 coordinates).
//
// OneSparseCell is the classic (sum, index-weighted sum, fingerprint)
// triple: it decodes a vector that is exactly 1-sparse and detects (whp,
// via a random-evaluation fingerprint over F_{2^61-1}) every other case.
// SSparseRecovery hashes coordinates into rows x buckets of cells and
// decodes any vector of support <= capacity by IBLT-style peeling.
//
// Shapes vs. states: an SSparseShape holds the hash functions and
// fingerprint randomness; an SSparseState holds only the cells. All states
// sharing a shape implement the SAME linear measurement, so states can be
// added coordinate-wise -- this is what makes per-vertex sketches summable
// across a component in the AGM decode loop, and what lets k-skeleton /
// light-edge recovery subtract previously-recovered subgraphs (Section 4).
#ifndef GMS_SKETCH_SPARSE_RECOVERY_H_
#define GMS_SKETCH_SPARSE_RECOVERY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/field.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/uint128.h"

namespace gms {

/// One recovered coordinate: (index, value).
struct SparseEntry {
  u128 index = 0;
  int64_t value = 0;

  friend bool operator==(const SparseEntry&, const SparseEntry&) = default;
};

/// The 1-sparse recovery triple. 32 bytes (u128 leads so alignment padding
/// is zero); trivially copyable; linear.
struct OneSparseCell {
  u128 index_sum = 0;       // sum of index*value, wrapping mod 2^128
  int64_t weight = 0;       // sum of values
  uint64_t fingerprint = 0; // sum of value * z^index over F_p

  void AddCell(const OneSparseCell& o) {
    weight += o.weight;
    index_sum += o.index_sum;
    fingerprint = FpAdd(fingerprint, o.fingerprint);
  }
  bool IsZero() const {
    return weight == 0 && index_sum == 0 && fingerprint == 0;
  }

  friend bool operator==(const OneSparseCell&, const OneSparseCell&) = default;
};

/// Shared measurement definition for an s-sparse recovery structure.
class SSparseShape {
 public:
  /// domain: exclusive upper bound on coordinate indices (< 2^126).
  /// capacity: max support size decodable. rows/buckets control the peeling
  /// hash table (buckets should be >= 2 * capacity).
  SSparseShape(u128 domain, int capacity, int rows, int buckets,
               uint64_t seed);

  u128 domain() const { return domain_; }
  int capacity() const { return capacity_; }
  int rows() const { return rows_; }
  int buckets() const { return buckets_; }
  int NumCells() const { return rows_ * buckets_; }
  uint64_t z() const { return z_; }

  /// Bucket of `index` in row r.
  int Bucket(int row, u128 index) const {
    return static_cast<int>(
        row_hash_[row].EvalBelow(index, static_cast<uint32_t>(buckets_)));
  }

  /// z^(index mod p-1): the fingerprint basis value for a coordinate.
  uint64_t FingerprintPower(u128 index) const {
    return FpPow(z_, static_cast<uint64_t>(index % (kMersenne61 - 1)));
  }

 private:
  u128 domain_;
  int capacity_;
  int rows_;
  int buckets_;
  uint64_t z_;
  std::vector<PolyHash> row_hash_;
};

/// Cell array implementing the shape's measurement. Linear: supports
/// Update (insert/delete = +/- delta) and Add (vector addition).
class SSparseState {
 public:
  explicit SSparseState(const SSparseShape* shape);

  void Update(u128 index, int64_t delta);

  /// As Update but with the fingerprint power precomputed by the caller
  /// (saves repeated FpPow when several states ingest the same coordinate).
  void UpdateWithPower(u128 index, int64_t delta, uint64_t power);

  void Add(const SSparseState& other);
  bool IsZero() const;

  /// Exact recovery by peeling. Returns the full support (index, value)
  /// pairs if the vector's support is <= capacity (whp); DecodeFailure if
  /// peeling gets stuck or a consistency check fails.
  Result<std::vector<SparseEntry>> Decode() const;

  size_t MemoryBytes() const {
    return cells_.size() * sizeof(OneSparseCell) + sizeof(*this);
  }

  /// Cell-wise equality (same measurement VALUE; the shapes may be distinct
  /// objects). Used by the determinism suite to assert that parallel
  /// ingestion leaves bit-identical state.
  friend bool operator==(const SSparseState& a, const SSparseState& b) {
    return a.cells_ == b.cells_;
  }

  const SSparseShape& shape() const { return *shape_; }

 private:
  friend class SSparseDecoder;
  const SSparseShape* shape_;
  std::vector<OneSparseCell> cells_;  // row-major [row][bucket]
};

/// Attempt to decode a single cell as exactly-1-sparse.
/// Returns: 1 with *out filled if 1-sparse, 0 if zero, -1 if undecodable.
int DecodeOneSparse(const OneSparseCell& cell, const SSparseShape& shape,
                    SparseEntry* out);

}  // namespace gms

#endif  // GMS_SKETCH_SPARSE_RECOVERY_H_
