#include "sketch/sparse_recovery.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace gms {

void SparseBufferAdd(std::vector<SparseEntry>* buf, u128 key,
                     int64_t weight) {
  auto it = std::lower_bound(
      buf->begin(), buf->end(), key,
      [](const SparseEntry& entry, u128 k) { return entry.index < k; });
  if (it != buf->end() && it->index == key) {
    it->value = static_cast<int64_t>(static_cast<uint64_t>(it->value) +
                                     static_cast<uint64_t>(weight));
    if (it->value == 0) buf->erase(it);
  } else {
    buf->insert(it, SparseEntry{key, weight});
  }
}

FingerprintBasis::FingerprintBasis(uint64_t z) : z_(z) {
  GMS_CHECK(z >= 1 && z < kMersenne61);
  // Window w holds z^(256^w * d) for d in [0, 256), so z^e is the product
  // of one entry per base-256 digit of e. Each window is a running product
  // seeded by the previous window's 256th power.
  table_.resize(static_cast<size_t>(kWindows) * kDigits);
  uint64_t base = z_;  // z^(256^w)
  for (int w = 0; w < kWindows; ++w) {
    uint64_t* row = &table_[static_cast<size_t>(w) * kDigits];
    row[0] = 1;
    for (int d = 1; d < kDigits; ++d) row[d] = FpMul(row[d - 1], base);
    base = FpMul(row[kDigits - 1], base);
  }
}

SSparseShape::SSparseShape(u128 domain, int capacity, int rows, int buckets,
                           uint64_t seed)
    : domain_(domain), capacity_(capacity), rows_(rows), buckets_(buckets) {
  GMS_CHECK(capacity >= 1 && rows >= 1 && buckets >= 1);
  GMS_CHECK(rows <= kMaxSketchRows);
  GMS_CHECK_MSG((domain >> 126) == 0, "domain exceeds 126 bits");
  Rng rng(seed);
  // Uniform nonzero field element; same draw position as the pre-basis
  // kernel so the row hashes below see an unchanged seed sequence.
  basis_ = std::make_shared<FingerprintBasis>(rng.Below(kMersenne61 - 2) + 1);
  row_hash_.reserve(static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    row_hash_.emplace_back(/*independence=*/2, rng.Fork());
  }
}

SSparseShape::SSparseShape(u128 domain, int capacity, int rows, int buckets,
                           uint64_t seed,
                           std::shared_ptr<const FingerprintBasis> basis)
    : domain_(domain),
      capacity_(capacity),
      rows_(rows),
      buckets_(buckets),
      basis_(std::move(basis)) {
  GMS_CHECK(capacity >= 1 && rows >= 1 && buckets >= 1);
  GMS_CHECK(rows <= kMaxSketchRows);
  GMS_CHECK_MSG((domain >> 126) == 0, "domain exceeds 126 bits");
  GMS_CHECK(basis_ != nullptr);
  Rng rng(seed);
  row_hash_.reserve(static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    row_hash_.emplace_back(/*independence=*/2, rng.Fork());
  }
}

void SSparseSegmentAdd(const SSparseShape& shape, uint64_t* seg,
                       const uint64_t* other) {
  const size_t cells = static_cast<size_t>(shape.NumCells());
  uint64_t* w = seg;
  uint64_t* il = w + cells;
  uint64_t* ih = il + cells;
  uint64_t* fp = ih + cells;
  const uint64_t* ow = other;
  const uint64_t* oil = ow + cells;
  const uint64_t* oih = oil + cells;
  const uint64_t* ofp = oih + cells;
  for (size_t i = 0; i < cells; ++i) w[i] += ow[i];
  for (size_t i = 0; i < cells; ++i) {
    const uint64_t nl = il[i] + oil[i];
    ih[i] += oih[i] + (nl < il[i] ? 1 : 0);
    il[i] = nl;
  }
  for (size_t i = 0; i < cells; ++i) fp[i] = FpAdd(fp[i], ofp[i]);
}

SSparseState::SSparseState(const SSparseShape* shape)
    : shape_(shape), buf_(SSparseSegmentWords(*shape), 0) {}

void SSparseState::Add(const SSparseState& other) {
  GMS_CHECK_MSG(shape_ == other.shape_, "adding states of different shapes");
  SSparseSegmentAdd(*shape_, buf_.data(), other.buf_.data());
}

bool SSparseState::IsZero() const {
  // Every component of a zero cell is a zero word, so the whole buffer
  // being zero is exactly "all cells zero" -- one linear scan.
  return std::all_of(buf_.begin(), buf_.end(),
                     [](uint64_t v) { return v == 0; });
}

int DecodeOneSparse(const OneSparseCell& cell, const SSparseShape& shape,
                    SparseEntry* out) {
  if (cell.IsZero()) return 0;
  if (cell.weight == 0) return -1;
  i128 s = static_cast<i128>(cell.index_sum);
  i128 w = cell.weight;
  if (s % w != 0) return -1;
  i128 idx = s / w;
  if (idx < 0 || static_cast<u128>(idx) >= shape.domain()) return -1;
  u128 index = static_cast<u128>(idx);
  uint64_t expect =
      FpMul(FpFromInt64(cell.weight), shape.FingerprintPower(index));
  if (expect != cell.fingerprint) return -1;
  out->index = index;
  out->value = cell.weight;
  return 1;
}

Result<std::vector<SparseEntry>> SSparseDecoder::Decode(
    const SSparseShape& shape, const uint64_t* seg) {
  const size_t cells = static_cast<size_t>(shape.NumCells());
  const int rows = shape.rows();
  const int buckets = shape.buckets();
  // Copy into owned scratch (assign reuses capacity: no allocation when
  // this decoder is reused, which the Decode() thread_local guarantees).
  scratch_.assign(seg, seg + 4 * cells);
  uint64_t* w = scratch_.data();
  uint64_t* il = w + cells;
  uint64_t* ih = il + cells;
  uint64_t* fp = ih + cells;
  auto cell_zero = [&](size_t i) {
    return (w[i] | il[i] | ih[i] | fp[i]) == 0;
  };
  // Count of nonzero cells, maintained incrementally as items are peeled,
  // so the termination test is O(1) per iteration instead of a full scan.
  size_t nonzero = 0;
  for (size_t i = 0; i < cells; ++i) nonzero += cell_zero(i) ? 0 : 1;

  std::vector<SparseEntry> recovered;
  // Peel: repeatedly find a decodable 1-sparse cell whose claimed index
  // actually routes to that cell, remove the item everywhere, repeat.
  const int max_iters = shape.capacity() * 4 + 8;
  for (int iter = 0; iter < max_iters; ++iter) {
    if (nonzero == 0) {
      // Merge duplicate extractions (an index can be peeled twice if a
      // ghost decode temporarily drove it negative).
      std::sort(recovered.begin(), recovered.end(),
                [](const SparseEntry& a, const SparseEntry& b) {
                  return a.index < b.index;
                });
      std::vector<SparseEntry> merged;
      for (const auto& e : recovered) {
        if (!merged.empty() && merged.back().index == e.index) {
          merged.back().value += e.value;
        } else {
          merged.push_back(e);
        }
      }
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [](const SparseEntry& e) {
                                    return e.value == 0;
                                  }),
                   merged.end());
      return merged;
    }
    bool progress = false;
    for (int r = 0; r < rows && !progress; ++r) {
      for (int b = 0; b < buckets && !progress; ++b) {
        const size_t i = static_cast<size_t>(r) * buckets + b;
        if (cell_zero(i)) continue;
        OneSparseCell cell;
        cell.weight = static_cast<int64_t>(w[i]);
        cell.index_sum = (static_cast<u128>(ih[i]) << 64) | il[i];
        cell.fingerprint = fp[i];
        SparseEntry entry;
        if (DecodeOneSparse(cell, shape, &entry) != 1) continue;
        const PreparedCoord pc = PrepareCoord(entry.index);
        if (shape.BucketFolded(r, pc.fold) != b) continue;  // ghost guard
        // Subtract the item from every row.
        const uint64_t fp_delta =
            FpMul(FpFromInt64(entry.value),
                  shape.FingerprintPowerFromExp(pc.exponent));
        const u128 is_delta =
            entry.index * static_cast<u128>(static_cast<i128>(entry.value));
        const uint64_t is_lo = static_cast<uint64_t>(is_delta);
        const uint64_t is_hi = static_cast<uint64_t>(is_delta >> 64);
        for (int rr = 0; rr < rows; ++rr) {
          const size_t j =
              static_cast<size_t>(rr) * buckets +
              static_cast<size_t>(shape.BucketFolded(rr, pc.fold));
          const bool was_nonzero = !cell_zero(j);
          w[j] -= static_cast<uint64_t>(entry.value);
          const uint64_t nl = il[j] - is_lo;
          ih[j] -= is_hi + (il[j] < is_lo ? 1 : 0);
          il[j] = nl;
          fp[j] = FpSub(fp[j], fp_delta);
          nonzero += (cell_zero(j) ? 0 : 1) - (was_nonzero ? 1 : 0);
        }
        recovered.push_back(entry);
        progress = true;
      }
    }
    if (!progress && nonzero != 0) {
      return Status::DecodeFailure("sparse-recovery peeling stuck");
    }
  }
  return Status::DecodeFailure("sparse-recovery iteration cap reached");
}

Result<std::vector<SparseEntry>> SSparseState::Decode() const {
  // One decoder per thread: Decode() is const and read-only on the state,
  // and concurrent decodes (the parallel extraction path) each reuse their
  // own thread's scratch.
  static thread_local SSparseDecoder decoder;
  return decoder.Decode(*shape_, buf_.data());
}

}  // namespace gms
