#include "sketch/sparse_recovery.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace gms {

SSparseShape::SSparseShape(u128 domain, int capacity, int rows, int buckets,
                           uint64_t seed)
    : domain_(domain), capacity_(capacity), rows_(rows), buckets_(buckets) {
  GMS_CHECK(capacity >= 1 && rows >= 1 && buckets >= 1);
  GMS_CHECK_MSG((domain >> 126) == 0, "domain exceeds 126 bits");
  Rng rng(seed);
  z_ = rng.Below(kMersenne61 - 2) + 1;  // uniform nonzero field element
  row_hash_.reserve(static_cast<size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    row_hash_.emplace_back(/*independence=*/2, rng.Fork());
  }
}

SSparseState::SSparseState(const SSparseShape* shape)
    : shape_(shape),
      cells_(static_cast<size_t>(shape->NumCells())) {}

void SSparseState::Update(u128 index, int64_t delta) {
  UpdateWithPower(index, delta, shape_->FingerprintPower(index));
}

void SSparseState::UpdateWithPower(u128 index, int64_t delta,
                                   uint64_t power) {
  GMS_DCHECK(index < shape_->domain());
  if (delta == 0) return;
  uint64_t fp_delta = FpMul(FpFromInt64(delta), power);
  for (int r = 0; r < shape_->rows(); ++r) {
    OneSparseCell& cell =
        cells_[static_cast<size_t>(r) * shape_->buckets() +
               shape_->Bucket(r, index)];
    cell.weight += delta;
    cell.index_sum += index * static_cast<u128>(static_cast<i128>(delta));
    cell.fingerprint = FpAdd(cell.fingerprint, fp_delta);
  }
}

void SSparseState::Add(const SSparseState& other) {
  GMS_CHECK_MSG(shape_ == other.shape_, "adding states of different shapes");
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i].AddCell(other.cells_[i]);
}

bool SSparseState::IsZero() const {
  return std::all_of(cells_.begin(), cells_.end(),
                     [](const OneSparseCell& c) { return c.IsZero(); });
}

int DecodeOneSparse(const OneSparseCell& cell, const SSparseShape& shape,
                    SparseEntry* out) {
  if (cell.IsZero()) return 0;
  if (cell.weight == 0) return -1;
  i128 s = static_cast<i128>(cell.index_sum);
  i128 w = cell.weight;
  if (s % w != 0) return -1;
  i128 idx = s / w;
  if (idx < 0 || static_cast<u128>(idx) >= shape.domain()) return -1;
  u128 index = static_cast<u128>(idx);
  uint64_t expect =
      FpMul(FpFromInt64(cell.weight), shape.FingerprintPower(index));
  if (expect != cell.fingerprint) return -1;
  out->index = index;
  out->value = cell.weight;
  return 1;
}

Result<std::vector<SparseEntry>> SSparseState::Decode() const {
  const SSparseShape& shape = *shape_;
  std::vector<OneSparseCell> work = cells_;
  std::vector<SparseEntry> recovered;
  // Peel: repeatedly find a decodable 1-sparse cell whose claimed index
  // actually routes to that cell, remove the item everywhere, repeat.
  const int max_iters = shape.capacity() * 4 + 8;
  for (int iter = 0; iter < max_iters; ++iter) {
    bool all_zero = std::all_of(work.begin(), work.end(),
                                [](const OneSparseCell& c) {
                                  return c.IsZero();
                                });
    bool progress = false;
    for (int r = 0; r < shape.rows() && !progress && !all_zero; ++r) {
      for (int b = 0; b < shape.buckets() && !progress; ++b) {
        OneSparseCell& cell =
            work[static_cast<size_t>(r) * shape.buckets() + b];
        if (cell.IsZero()) continue;
        SparseEntry entry;
        if (DecodeOneSparse(cell, shape, &entry) != 1) continue;
        if (shape.Bucket(r, entry.index) != b) continue;  // ghost guard
        // Subtract the item from every row.
        uint64_t power = shape.FingerprintPower(entry.index);
        uint64_t fp_delta = FpMul(FpFromInt64(entry.value), power);
        for (int rr = 0; rr < shape.rows(); ++rr) {
          OneSparseCell& c =
              work[static_cast<size_t>(rr) * shape.buckets() +
                   shape.Bucket(rr, entry.index)];
          c.weight -= entry.value;
          c.index_sum -=
              entry.index * static_cast<u128>(static_cast<i128>(entry.value));
          c.fingerprint = FpSub(c.fingerprint, fp_delta);
        }
        recovered.push_back(entry);
        progress = true;
      }
    }
    if (all_zero) {
      // Merge duplicate extractions (an index can be peeled twice if a
      // ghost decode temporarily drove it negative).
      std::sort(recovered.begin(), recovered.end(),
                [](const SparseEntry& a, const SparseEntry& b) {
                  return a.index < b.index;
                });
      std::vector<SparseEntry> merged;
      for (const auto& e : recovered) {
        if (!merged.empty() && merged.back().index == e.index) {
          merged.back().value += e.value;
        } else {
          merged.push_back(e);
        }
      }
      merged.erase(std::remove_if(merged.begin(), merged.end(),
                                  [](const SparseEntry& e) {
                                    return e.value == 0;
                                  }),
                   merged.end());
      return merged;
    }
    if (!progress) {
      return Status::DecodeFailure("sparse-recovery peeling stuck");
    }
  }
  return Status::DecodeFailure("sparse-recovery iteration cap reached");
}

}  // namespace gms
