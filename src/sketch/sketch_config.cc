#include "sketch/sketch_config.h"

// Presets are header-inline; TU kept for the library target.
namespace gms {}
