#include "sketch/sketch_config.h"

#include "sketch/sparse_recovery.h"
#include "wire/wire.h"

namespace gms {

void WriteSketchConfig(const SketchConfig& config, wire::Writer* w) {
  w->I32(config.sparse_capacity);
  w->I32(config.rows);
  w->I32(config.buckets_per_capacity);
  w->I32(config.extra_boruvka_rounds);
  w->U32(config.sparse_threshold);
}

Status ReadSketchConfig(wire::Reader* r, SketchConfig* config) {
  GMS_RETURN_IF_ERROR(r->I32(&config->sparse_capacity));
  GMS_RETURN_IF_ERROR(r->I32(&config->rows));
  GMS_RETURN_IF_ERROR(r->I32(&config->buckets_per_capacity));
  GMS_RETURN_IF_ERROR(r->I32(&config->extra_boruvka_rounds));
  GMS_RETURN_IF_ERROR(r->U32(&config->sparse_threshold));
  if (config->sparse_threshold > (1u << 20)) {
    return Status::InvalidArgument("wire: sparse threshold out of range");
  }
  if (config->sparse_capacity < 1 || config->rows < 1 ||
      config->rows > kMaxSketchRows || config->buckets_per_capacity < 1 ||
      config->extra_boruvka_rounds < 0 ||
      config->sparse_capacity > (1 << 20) ||
      config->buckets_per_capacity > (1 << 20) ||
      config->extra_boruvka_rounds > (1 << 20)) {
    return Status::InvalidArgument("wire: sketch config out of range");
  }
  // Cap the PRODUCT too: BucketsPerRow multiplies these in int, and the
  // shape-size formulas multiply them into payload bounds, so two
  // individually in-range fields must not combine into an overflow.
  if (static_cast<int64_t>(config->sparse_capacity) *
          config->buckets_per_capacity >
      (int64_t{1} << 24)) {
    return Status::InvalidArgument("wire: sketch config buckets out of range");
  }
  return Status::OK();
}

}  // namespace gms
