// Versioned wire format for sketch state (the "message" of the Section 2
// simultaneous-communication protocol, and the unit of sharded / multi-node
// ingestion). Every sketch in the library is a LINEAR function of the
// stream, so its entire transferable state is its cell words; a frame is
// those words plus enough header to (a) rebuild the shape deterministically
// from the public seed and (b) refuse to merge mismatched measurements.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic  "GMSK" (0x4B534D47 as a LE u32)
//   4       2     version (kVersion; readers reject anything newer)
//   6       2     frame type (FrameType: which sketch class follows)
//   8       4     header length H in bytes
//   12      8     payload length P in bytes
//   20      H     header  (shape: seed, n, params, ... -- type-specific)
//   20+H    P     payload (SoA cell words, raw little-endian u64s)
//   20+H+P  8     checksum (FNV-1a 64 over bytes [0, 20+H+P))
//
// Decoding NEVER aborts: truncation, bad magic, version/type mismatch,
// checksum failure, and shape disagreements all surface as Status. The
// checksum detects every single-byte corruption (each FNV-1a step is a
// bijection of the running hash for a fixed input byte).
#ifndef GMS_WIRE_WIRE_H_
#define GMS_WIRE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/status.h"
#include "util/uint128.h"

namespace gms {
namespace wire {

inline constexpr uint32_t kMagic = 0x4B534D47u;  // "GMSK"
/// Version 2 added the hybrid sparse/dense cell sections (a `repr` byte
/// followed by either raw arena words or per-column exact buffers) and the
/// sparse_threshold field in every SketchConfig header. v1 frames carry
/// neither and are rejected.
inline constexpr uint16_t kVersion = 2;
/// Bytes before the header (magic + version + type + lengths).
inline constexpr size_t kPreambleBytes = 20;
/// Trailing checksum bytes.
inline constexpr size_t kChecksumBytes = 8;

/// Which sketch class a frame carries. Values are wire-stable: append only.
enum class FrameType : uint16_t {
  kL0Sampler = 1,
  kSpanningForest = 2,
  kKSkeleton = 3,
  kVcQuery = 4,
  kHyperVcQuery = 5,
  kSparsifier = 6,
  /// Serving-protocol frames (src/serve/serve_protocol.h): a query against
  /// a live SketchServer and its answer. Same envelope (magic, version,
  /// checksum) as the sketch-state frames so one transport carries both.
  kServeRequest = 7,
  kServeResponse = 8,
};

/// Stable lower-case name for a frame type ("l0_sampler", ...); "unknown"
/// for values outside the enum. For diagnostics and fuzz-corpus naming.
const char* FrameTypeName(FrameType type);

/// Read the frame-type field of a buffer WITHOUT validating the frame:
/// requires only the 20-byte preamble with correct magic and a supported
/// version. Lets a dispatcher route a frame to the right Deserialize (which
/// then fully validates via ParseFrame) without trying all types.
Result<FrameType> PeekFrameType(std::span<const uint8_t> buf);

/// FNV-1a 64 over a byte range.
uint64_t Checksum(const uint8_t* data, size_t len);

/// Append-only little-endian encoder over a caller-owned byte vector.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void U128(u128 v) {
    U64(static_cast<uint64_t>(v));
    U64(static_cast<uint64_t>(v >> 64));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Bool(bool v) { U8(v ? 1 : 0); }

  /// u64 count + bit-packed payload (LSB-first within each byte).
  void BoolVec(const std::vector<bool>& v);

  /// Raw little-endian u64 words (the SoA cell payload).
  void Words(const uint64_t* w, size_t count);

  size_t size() const { return out_->size(); }

 private:
  void Raw(const void* p, size_t len) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    out_->insert(out_->end(), b, b + len);
  }

  std::vector<uint8_t>* out_;
};

/// Bounds-checked little-endian cursor; every read can fail with Status
/// instead of running off the buffer.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U16(uint16_t* v) { return Raw(v, 2); }
  Status U32(uint32_t* v) { return Raw(v, 4); }
  Status U64(uint64_t* v) { return Raw(v, 8); }
  Status U128(u128* v);
  Status I32(int32_t* v) { return Raw(v, 4); }
  Status F64(double* v);
  Status Bool(bool* v);

  /// Counterpart of Writer::BoolVec; rejects counts above `max_size`.
  Status BoolVec(std::vector<bool>* v, size_t max_size);

  /// Read exactly `count` little-endian u64 words into dst.
  Status Words(uint64_t* dst, size_t count);

  /// Advance the cursor `len` bytes without copying (skim validation of
  /// variable-length sections); fails like a read if fewer bytes remain.
  Status Skip(size_t len);

  size_t remaining() const { return data_.size() - pos_; }

  /// Error unless the cursor consumed the buffer exactly.
  Status ExpectEnd() const;

 private:
  Status Raw(void* p, size_t len);

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

/// Builds one frame in place at the tail of `out` (no payload staging copy):
///   FrameBuilder fb(type, &out);
///   ...write header fields through fb.writer()...
///   fb.EndHeader();
///   ...write payload words through fb.writer()...
///   fb.Finish();
class FrameBuilder {
 public:
  FrameBuilder(FrameType type, std::vector<uint8_t>* out);
  ~FrameBuilder() { GMS_CHECK_MSG(finished_, "FrameBuilder::Finish not called"); }
  FrameBuilder(const FrameBuilder&) = delete;
  FrameBuilder& operator=(const FrameBuilder&) = delete;

  Writer& writer() { return writer_; }
  void EndHeader();
  void Finish();

 private:
  std::vector<uint8_t>* out_;
  Writer writer_;
  size_t frame_start_;
  size_t header_start_;
  size_t payload_start_ = 0;
  bool header_done_ = false;
  bool finished_ = false;
};

/// A validated frame: views into the caller's buffer.
struct Frame {
  FrameType type = FrameType::kL0Sampler;
  std::span<const uint8_t> header;
  std::span<const uint8_t> payload;
};

/// Validate magic, version, lengths, and checksum; the whole buffer must be
/// exactly one frame of type `expected`. Never aborts on bad input.
Result<Frame> ParseFrame(std::span<const uint8_t> buf, FrameType expected);

/// True iff payload_bytes == 8 * product(factors), with the product carried
/// in u128 so hostile shape headers whose individual fields are in range but
/// whose PRODUCT is astronomical compare as a plain mismatch instead of
/// wrapping. Deserializers check this BEFORE constructing a sketch, so a
/// tiny frame can never command a huge allocation.
inline bool PayloadMatchesShape(size_t payload_bytes,
                                std::initializer_list<uint64_t> factors) {
  u128 total = 8;  // bytes per cell word
  for (uint64_t f : factors) {
    if (f != 0 && total > ~u128{0} / f) return false;
    total *= f;
  }
  return total == payload_bytes;
}

}  // namespace wire
}  // namespace gms

#endif  // GMS_WIRE_WIRE_H_
