#include "wire/wire.h"

namespace gms {
namespace wire {

uint64_t Checksum(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void Writer::BoolVec(const std::vector<bool>& v) {
  U64(v.size());
  uint8_t byte = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      U8(byte);
      byte = 0;
    }
  }
  if (v.size() % 8 != 0) U8(byte);
}

void Writer::Words(const uint64_t* w, size_t count) {
  // Little-endian host assumption holds everywhere this library builds
  // (x86-64 / aarch64); a byte-wise path would cost a copy per word.
  Raw(w, count * sizeof(uint64_t));
}

Status Reader::Raw(void* p, size_t len) {
  if (len > remaining()) {
    return Status::InvalidArgument("wire: truncated field");
  }
  std::memcpy(p, data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Reader::U128(u128* v) {
  uint64_t lo = 0, hi = 0;
  GMS_RETURN_IF_ERROR(U64(&lo));
  GMS_RETURN_IF_ERROR(U64(&hi));
  *v = (static_cast<u128>(hi) << 64) | lo;
  return Status::OK();
}

Status Reader::F64(double* v) {
  uint64_t bits = 0;
  GMS_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, 8);
  return Status::OK();
}

Status Reader::Bool(bool* v) {
  uint8_t b = 0;
  GMS_RETURN_IF_ERROR(U8(&b));
  if (b > 1) return Status::InvalidArgument("wire: bool field out of range");
  *v = b != 0;
  return Status::OK();
}

Status Reader::BoolVec(std::vector<bool>* v, size_t max_size) {
  uint64_t count = 0;
  GMS_RETURN_IF_ERROR(U64(&count));
  if (count > max_size) {
    return Status::InvalidArgument("wire: bool vector count out of range");
  }
  const size_t bytes = (static_cast<size_t>(count) + 7) / 8;
  if (bytes > remaining()) {
    return Status::InvalidArgument("wire: truncated bool vector");
  }
  v->assign(static_cast<size_t>(count), false);
  for (size_t i = 0; i < count; ++i) {
    uint8_t byte = data_[pos_ + i / 8];
    (*v)[i] = (byte >> (i % 8)) & 1u;
  }
  pos_ += bytes;
  return Status::OK();
}

Status Reader::Words(uint64_t* dst, size_t count) {
  return Raw(dst, count * sizeof(uint64_t));
}

Status Reader::Skip(size_t len) {
  if (len > remaining()) {
    return Status::InvalidArgument("wire: truncated field");
  }
  pos_ += len;
  return Status::OK();
}

Status Reader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument("wire: trailing bytes after frame content");
  }
  return Status::OK();
}

FrameBuilder::FrameBuilder(FrameType type, std::vector<uint8_t>* out)
    : out_(out), writer_(out), frame_start_(out->size()) {
  writer_.U32(kMagic);
  writer_.U16(kVersion);
  writer_.U16(static_cast<uint16_t>(type));
  writer_.U32(0);  // header length, patched by EndHeader
  writer_.U64(0);  // payload length, patched by Finish
  header_start_ = out->size();
}

void FrameBuilder::EndHeader() {
  GMS_CHECK(!header_done_);
  header_done_ = true;
  payload_start_ = out_->size();
  const uint32_t header_len =
      static_cast<uint32_t>(payload_start_ - header_start_);
  std::memcpy(out_->data() + frame_start_ + 8, &header_len, 4);
}

void FrameBuilder::Finish() {
  GMS_CHECK_MSG(header_done_, "FrameBuilder::EndHeader not called");
  GMS_CHECK(!finished_);
  finished_ = true;
  const uint64_t payload_len =
      static_cast<uint64_t>(out_->size() - payload_start_);
  std::memcpy(out_->data() + frame_start_ + 12, &payload_len, 8);
  const uint64_t sum =
      Checksum(out_->data() + frame_start_, out_->size() - frame_start_);
  writer_.U64(sum);
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kL0Sampler: return "l0_sampler";
    case FrameType::kSpanningForest: return "spanning_forest";
    case FrameType::kKSkeleton: return "k_skeleton";
    case FrameType::kVcQuery: return "vc_query";
    case FrameType::kHyperVcQuery: return "hyper_vc_query";
    case FrameType::kSparsifier: return "sparsifier";
    case FrameType::kServeRequest: return "serve_request";
    case FrameType::kServeResponse: return "serve_response";
  }
  return "unknown";
}

Result<FrameType> PeekFrameType(std::span<const uint8_t> buf) {
  if (buf.size() < kPreambleBytes) {
    return Status::InvalidArgument("wire: buffer shorter than a preamble");
  }
  uint32_t magic = 0;
  uint16_t version = 0, type = 0;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(&version, buf.data() + 4, 2);
  std::memcpy(&type, buf.data() + 6, 2);
  if (magic != kMagic) {
    return Status::InvalidArgument("wire: bad magic (not a sketch frame)");
  }
  if (version == 0 || version > kVersion) {
    return Status::InvalidArgument("wire: unsupported frame version");
  }
  if (type < static_cast<uint16_t>(FrameType::kL0Sampler) ||
      type > static_cast<uint16_t>(FrameType::kServeResponse)) {
    return Status::InvalidArgument("wire: unknown frame type");
  }
  return static_cast<FrameType>(type);
}

Result<Frame> ParseFrame(std::span<const uint8_t> buf, FrameType expected) {
  if (buf.size() < kPreambleBytes + kChecksumBytes) {
    return Status::InvalidArgument("wire: buffer shorter than a frame");
  }
  uint32_t magic = 0;
  uint16_t version = 0, type = 0;
  uint32_t header_len = 0;
  uint64_t payload_len = 0;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(&version, buf.data() + 4, 2);
  std::memcpy(&type, buf.data() + 6, 2);
  std::memcpy(&header_len, buf.data() + 8, 4);
  std::memcpy(&payload_len, buf.data() + 12, 8);
  if (magic != kMagic) {
    return Status::InvalidArgument("wire: bad magic (not a sketch frame)");
  }
  if (version == 0 || version > kVersion) {
    return Status::InvalidArgument("wire: unsupported frame version");
  }
  // Derive the content size from the buffer and make each claimed length
  // account for its exact share: summing header_len + payload_len first
  // would wrap mod 2^64 for hostile payload_len values near 2^64, passing
  // the size comparison with spans that run off the buffer.
  const uint64_t content =
      buf.size() - (kPreambleBytes + kChecksumBytes);
  if (header_len > content || payload_len != content - header_len) {
    return Status::InvalidArgument(
        "wire: frame lengths disagree with the buffer (truncated?)");
  }
  const size_t checksum_at = kPreambleBytes + static_cast<size_t>(content);
  uint64_t declared = 0;
  std::memcpy(&declared, buf.data() + checksum_at, 8);
  if (Checksum(buf.data(), checksum_at) != declared) {
    return Status::InvalidArgument("wire: checksum mismatch (corrupt frame)");
  }
  if (type != static_cast<uint16_t>(expected)) {
    return Status::InvalidArgument("wire: frame type mismatch");
  }
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.header = buf.subspan(kPreambleBytes, header_len);
  f.payload = buf.subspan(kPreambleBytes + header_len,
                          static_cast<size_t>(payload_len));
  return f;
}

}  // namespace wire
}  // namespace gms
