#include "connectivity/connectivity_query.h"

#include "exact/hypergraph_mincut.h"
#include "graph/traversal.h"

namespace gms {

ConnectivityQuery::ConnectivityQuery(size_t n, size_t max_rank, uint64_t seed,
                                     const SpanningForestSketch::Params& params)
    : sketch_(n, max_rank, seed, params) {}

Result<bool> ConnectivityQuery::IsConnected() const {
  auto span = sketch_.ExtractSpanningGraph();
  if (!span.ok()) return span.status();
  return gms::IsConnected(*span);
}

Result<size_t> ConnectivityQuery::NumComponents() const {
  auto span = sketch_.ExtractSpanningGraph();
  if (!span.ok()) return span.status();
  return gms::NumComponents(*span);
}

Result<bool> ConnectivityQuery::SameComponent(VertexId u, VertexId v) const {
  auto span = sketch_.ExtractSpanningGraph();
  if (!span.ok()) return span.status();
  auto ids = ConnectedComponents(*span);
  GMS_CHECK(u < ids.size() && v < ids.size());
  return ids[u] == ids[v];
}

EdgeConnectivityQuery::EdgeConnectivityQuery(
    size_t n, size_t max_rank, size_t k, uint64_t seed,
    const SpanningForestSketch::Params& params)
    : sketch_(n, max_rank, k, seed, params) {}

Result<size_t> EdgeConnectivityQuery::EdgeConnectivityCapped() const {
  auto skeleton = sketch_.Extract();
  if (!skeleton.ok()) return skeleton.status();
  if (!gms::IsConnected(*skeleton)) return size_t{0};
  if (skeleton->NumVertices() < 2) return size_t{0};
  auto cut = HypergraphMinCut(*skeleton);
  size_t value = static_cast<size_t>(cut.value + 0.5);
  return std::min(value, sketch_.k());
}

Result<bool> EdgeConnectivityQuery::IsKEdgeConnected() const {
  auto capped = EdgeConnectivityCapped();
  if (!capped.ok()) return capped.status();
  return *capped >= sketch_.k();
}

Result<HypergraphCut> EdgeConnectivityQuery::MinCut() const {
  auto skeleton = sketch_.Extract();
  if (!skeleton.ok()) return skeleton.status();
  if (skeleton->NumVertices() < 2) {
    return Status::FailedPrecondition("min cut needs >= 2 vertices");
  }
  HypergraphCut cut = HypergraphMinCut(*skeleton);
  cut.value = std::min(cut.value, static_cast<double>(sketch_.k()));
  return cut;
}

}  // namespace gms
