#include "connectivity/incidence.h"

// Header-only; TU kept for the library target.
namespace gms {}
