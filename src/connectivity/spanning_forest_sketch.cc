#include "connectivity/spanning_forest_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "connectivity/incidence.h"
#include "graph/union_find.h"
#include "stream/sharded_merge.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {

namespace {

// Ask the kernel to back a large buffer with transparent huge pages before
// it is first touched. Vertex updates hit the arena at random offsets, so
// with 4 KiB pages nearly every update pays a TLB page walk; 2 MiB pages
// keep the whole arena's translations resident. Advisory only (no-op off
// Linux or when THP is disabled).
void AdviseHugePages(void* data, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr uintptr_t kHuge = 2u << 20;
  uintptr_t begin = (reinterpret_cast<uintptr_t>(data) + kHuge - 1) & ~(kHuge - 1);
  uintptr_t end =
      (reinterpret_cast<uintptr_t>(data) + bytes) & ~(kHuge - 1);
  if (end > begin) {
    madvise(reinterpret_cast<void*>(begin), end - begin, MADV_HUGEPAGE);
  }
#else
  (void)data;
  (void)bytes;
#endif
}

int DefaultRounds(size_t n, const SketchConfig& config) {
  int log_n = 1;
  while ((size_t{1} << log_n) < n) ++log_n;
  return log_n + config.extra_boruvka_rounds;
}

}  // namespace

void WriteForestParams(const ForestSketchParams& params, wire::Writer* w) {
  WriteSketchConfig(params.config, w);
  w->I32(params.rounds);
}

Status ReadForestParams(wire::Reader* r, ForestSketchParams* params) {
  GMS_RETURN_IF_ERROR(ReadSketchConfig(r, &params->config));
  GMS_RETURN_IF_ERROR(r->I32(&params->rounds));
  if (params->rounds < 0 || params->rounds > (1 << 20)) {
    return Status::InvalidArgument("wire: forest rounds out of range");
  }
  params->engine = EngineParams();
  return Status::OK();
}

Result<uint64_t> ForestStateWords(size_t n, size_t max_rank,
                                  const SketchConfig& config) {
  auto domain = EdgeCodec::DomainSizeFor(n, max_rank);
  if (!domain.ok()) return domain.status();
  return L0StateWords(*domain, config);
}

SpanningForestSketch::SpanningForestSketch(size_t n, size_t max_rank,
                                           uint64_t seed, const Params& params,
                                           const std::vector<bool>* active)
    : n_(n),
      rounds_(params.rounds > 0 ? params.rounds
                                : DefaultRounds(n, params.config)),
      seed_(seed),
      params_(params),
      codec_(n, max_rank),
      state_index_(n, -1) {
  GMS_CHECK(active == nullptr || active->size() == n);
  Rng rng(seed);
  round_shapes_.reserve(static_cast<size_t>(rounds_));
  for (int t = 0; t < rounds_; ++t) {
    round_shapes_.push_back(std::make_shared<const L0Shape>(
        codec_.DomainSize(), params.config, rng.Fork()));
  }
  size_t num_active = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (active != nullptr && !(*active)[v]) continue;
    state_index_[v] = static_cast<int64_t>(num_active++);
  }
  state_words_ = round_shapes_[0]->TotalWords();
  const size_t total = num_active * static_cast<size_t>(rounds_) * state_words_;
  // Reserve first so the huge-page advice lands before the zero-fill is the
  // first touch of the pages.
  arena_.reserve(total);
  AdviseHugePages(arena_.data(), total * sizeof(uint64_t));
  arena_.resize(total, 0);
}

void SpanningForestSketch::ApplyToRound(int t, const Hyperedge& e,
                                        const PreparedCoord& pc, int delta) {
  const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
  const int level = shape.LevelOfFolded(pc.fold);
  const SSparseShape& ls = shape.level_shape(level);
  const size_t level_off = static_cast<size_t>(level) * shape.SegmentWords();
  const size_t cells = static_cast<size_t>(ls.NumCells());
  const int rows = ls.rows();
  // Everything below the incidence sign depends only on the key, not the
  // endpoint: resolve the target cells and the +delta-magnitude deltas once
  // and apply them per endpoint with the coefficient from Section 4.1's
  // encoding (|e|-1 at min e, -1 elsewhere; vertices_ is sorted, so the
  // min is position 0 -- no per-vertex membership search).
  GMS_DCHECK(rows <= kMaxSketchRows);
  size_t idx[kMaxSketchRows];
  for (int r = 0; r < rows; ++r) {
    idx[r] = static_cast<size_t>(r) * ls.buckets() +
             static_cast<size_t>(ls.BucketFolded(r, pc.fold));
  }
  const uint64_t power = shape.basis().PowerFromExp(pc.exponent);
  const uint64_t fp_unit = FpMul(FpFromInt64(delta), power);
  const u128 is_unit =
      pc.index * static_cast<u128>(static_cast<i128>(delta));
  const int64_t head = static_cast<int64_t>(e.size()) - 1;
  for (size_t pos = 0; pos < e.size(); ++pos) {
    const VertexId v = e[pos];
    GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
    uint64_t* seg = ArenaAt(v, t) + level_off;
    if (pos == 0) {
      const int64_t wdelta = head * delta;
      const uint64_t fp =
          head == 1 ? fp_unit : FpMul(FpReduce(static_cast<u128>(head)), fp_unit);
      SSparseSegmentApply(seg, idx, rows, cells, wdelta,
                          is_unit * static_cast<u128>(head), fp);
    } else {
      SSparseSegmentApply(seg, idx, rows, cells, -delta, -is_unit,
                          FpNeg(fp_unit));
    }
  }
}

void SpanningForestSketch::PrefetchRound(int t, const Hyperedge& e,
                                         const PreparedCoord& pc) const {
  const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
  const int level = shape.LevelOfFolded(pc.fold);
  const SSparseShape& ls = shape.level_shape(level);
  const size_t cells = static_cast<size_t>(ls.NumCells());
  const size_t level_off = static_cast<size_t>(level) * shape.SegmentWords();
  for (VertexId v : e) {
    if (!IsActive(v)) continue;
    const uint64_t* seg = ArenaAt(v, t) + level_off;
    for (int r = 0; r < ls.rows(); ++r) {
      const size_t i = static_cast<size_t>(r) * ls.buckets() +
                       static_cast<size_t>(ls.BucketFolded(r, pc.fold));
      __builtin_prefetch(seg + i, 1, 1);
      __builtin_prefetch(seg + cells + i, 1, 1);
      __builtin_prefetch(seg + 2 * cells + i, 1, 1);
      __builtin_prefetch(seg + 3 * cells + i, 1, 1);
    }
  }
}

void SpanningForestSketch::Update(const Hyperedge& e, int delta) {
  GMS_CHECK_MSG(e.size() <= codec_.max_rank(), "hyperedge exceeds max_rank");
  UpdateEncoded(e, codec_.Encode(e), delta);
}

void SpanningForestSketch::UpdateEncoded(const Hyperedge& e, u128 index,
                                         int delta) {
  UpdatePrepared(e, PrepareCoord(index), delta);
}

void SpanningForestSketch::UpdatePrepared(const Hyperedge& e,
                                          const PreparedCoord& pc, int delta) {
  for (int t = 0; t < rounds_; ++t) ApplyToRound(t, e, pc, delta);
}

void SpanningForestSketch::UpdateLocal(VertexId v, const Hyperedge& e,
                                       int delta) {
  GMS_CHECK_MSG(e.Contains(v), "UpdateLocal: vertex not in hyperedge");
  GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
  const PreparedCoord pc = PrepareCoord(codec_.Encode(e));
  int64_t coeff = IncidenceCoefficient(e, v) * delta;
  for (int t = 0; t < rounds_; ++t) {
    const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
    int level = shape.LevelOfFolded(pc.fold);
    uint64_t power = shape.basis().PowerFromExp(pc.exponent);
    SSparseSegmentUpdate(shape.level_shape(level),
                         ArenaAt(v, t) +
                             static_cast<size_t>(level) * shape.SegmentWords(),
                         pc, coeff, power);
  }
}

void SpanningForestSketch::Process(std::span<const StreamUpdate> updates) {
  if (UseShardedMerge(params_.engine, updates.size())) {
    ShardedMergeIngest(this, updates, params_.engine.threads);
    return;
  }
  // Encode and prepare once per update (the combinadic rank, key fold, and
  // exponent reduction are the same for every round), then hand each worker
  // a contiguous block of rounds: round columns are disjoint state, so no
  // worker ever touches another's cells.
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.size() <= codec_.max_rank(),
                  "hyperedge exceeds max_rank");
    prepared[j] = PrepareCoord(codec_.Encode(updates[j].edge));
  }
  // Lookahead distance for the cell prefetch: far enough to cover DRAM
  // latency across the ~8 lines an update touches, near enough that the
  // lines are still resident when reached.
  constexpr size_t kPrefetchAhead = 12;
  ParallelFor(params_.engine.threads, static_cast<size_t>(rounds_),
              [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t) {
                  for (size_t j = 0; j < updates.size(); ++j) {
                    const size_t jp = j + kPrefetchAhead;
                    if (jp < updates.size()) {
                      PrefetchRound(static_cast<int>(t), updates[jp].edge,
                                    prepared[jp]);
                    }
                    ApplyToRound(static_cast<int>(t), updates[j].edge,
                                 prepared[j], updates[j].delta);
                  }
                }
              });
}

void SpanningForestSketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

void SpanningForestSketch::RemoveHyperedges(
    const std::vector<Hyperedge>& edges) {
  for (const auto& e : edges) Update(e, -1);
}

Result<Hypergraph> SpanningForestSketch::ExtractSpanningGraph(
    size_t threads) const {
  if (threads == 0) threads = params_.engine.threads;
  Hypergraph result(n_);
  UnionFind uf(n_);
  std::vector<VertexId> active_vertices;
  for (VertexId v = 0; v < n_; ++v) {
    if (IsActive(v)) active_vertices.push_back(v);
  }
  if (active_vertices.size() <= 1) return result;

  for (int t = 0; t < rounds_; ++t) {
    // Group active vertices by current component; comp[v] snapshots the
    // component index so the parallel summation below never touches the
    // (path-compressing, hence mutating) union-find.
    std::vector<std::vector<VertexId>> groups;
    std::vector<int64_t> comp(n_, -1);
    {
      std::vector<int64_t> dense(n_, -1);
      for (VertexId v : active_vertices) {
        VertexId r = uf.Find(v);
        if (dense[r] < 0) {
          dense[r] = static_cast<int64_t>(groups.size());
          groups.emplace_back();
        }
        comp[v] = dense[r];
        groups[static_cast<size_t>(dense[r])].push_back(v);
      }
    }
    if (groups.size() <= 1) break;

    // Sample one crossing hyperedge per component from the summed sketch.
    // Components are independent read-only reductions over this round's
    // states, so they fan out across the pool; merging stays serial and in
    // group order, which keeps the decode deterministic.
    std::vector<Hyperedge> found(groups.size());
    std::vector<char> has_found(groups.size(), 0);
    ParallelFor(threads, groups.size(), [&](size_t begin, size_t end) {
      for (size_t g = begin; g < end; ++g) {
        const auto& group = groups[g];
        L0State acc(round_shapes_[static_cast<size_t>(t)].get());
        for (VertexId v : group) {
          acc.AddRaw(ArenaAt(v, t));
        }
        auto sample = acc.Sample();
        if (!sample.ok()) continue;  // isolated component or sampler failure
        auto decoded = codec_.Decode(sample->index);
        if (!decoded.ok()) continue;  // corrupted sample; skip defensively
        const Hyperedge& e = *decoded;
        // Sanity: a genuine sample crosses the component boundary and
        // touches only active vertices.
        bool valid = std::llabs(sample->value) <
                         static_cast<int64_t>(codec_.max_rank()) &&
                     sample->value != 0;
        bool any_in = false, any_out = false;
        for (VertexId v : e) {
          if (!IsActive(v)) valid = false;
          (comp[v] == static_cast<int64_t>(g) ? any_in : any_out) = true;
        }
        if (!valid || !any_in || !any_out) continue;
        found[g] = e;
        has_found[g] = 1;
      }
    });
    for (size_t g = 0; g < groups.size(); ++g) {
      if (!has_found[g]) continue;
      const Hyperedge& e = found[g];
      bool merged = false;
      for (size_t i = 1; i < e.size(); ++i) merged |= uf.Union(e[0], e[i]);
      if (merged) result.AddEdge(e);
    }
  }
  return result;
}

Status SpanningForestSketch::MergeFrom(const SpanningForestSketch& other) {
  if (seed_ != other.seed_ || n_ != other.n_ ||
      codec_.max_rank() != other.codec_.max_rank() ||
      rounds_ != other.rounds_ || state_words_ != other.state_words_) {
    return Status::InvalidArgument(
        "SpanningForestSketch::MergeFrom: seed/shape mismatch (different "
        "measurement)");
  }
  // The other's active set must be a subset of ours: equal sets are the
  // sharded-merge case; a strict subset is the referee folding a player's
  // single-vertex state into the full sketch.
  for (VertexId v = 0; v < n_; ++v) {
    if (other.IsActive(v) && !IsActive(v)) {
      return Status::InvalidArgument(
          "SpanningForestSketch::MergeFrom: other sketch is active at a "
          "vertex this sketch is not");
    }
  }
  const size_t seg_words = round_shapes_[0]->SegmentWords();
  const int num_levels = round_shapes_[0]->num_levels();
  for (VertexId v = 0; v < n_; ++v) {
    if (!other.IsActive(v)) continue;
    for (int t = 0; t < rounds_; ++t) {
      const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
      uint64_t* dst = ArenaAt(v, t);
      const uint64_t* src = other.ArenaAt(v, t);
      for (int j = 0; j < num_levels; ++j) {
        SSparseSegmentAdd(shape.level_shape(j),
                          dst + static_cast<size_t>(j) * seg_words,
                          src + static_cast<size_t>(j) * seg_words);
      }
    }
  }
  return Status::OK();
}

void SpanningForestSketch::Clear() {
  std::fill(arena_.begin(), arena_.end(), 0);
}

void SpanningForestSketch::AppendCells(wire::Writer* w) const {
  w->Words(arena_.data(), arena_.size());
}

Status SpanningForestSketch::ReadCells(wire::Reader* r) {
  if (r->remaining() < arena_.size() * sizeof(uint64_t)) {
    return Status::InvalidArgument("wire: forest payload size mismatch");
  }
  return r->Words(arena_.data(), arena_.size());
}

void SpanningForestSketch::Serialize(std::vector<uint8_t>* out) const {
  wire::FrameBuilder fb(wire::FrameType::kSpanningForest, out);
  fb.writer().U64(n_);
  fb.writer().U64(codec_.max_rank());
  fb.writer().U64(seed_);
  // rounds_ is already resolved (never 0), so the reconstruction is exact
  // even when this sketch was built with the rounds=0 default.
  Params resolved = params_;
  resolved.rounds = rounds_;
  WriteForestParams(resolved, &fb.writer());
  std::vector<bool> active(n_);
  for (VertexId v = 0; v < n_; ++v) active[v] = IsActive(v);
  fb.writer().BoolVec(active);
  fb.EndHeader();
  AppendCells(&fb.writer());
  fb.Finish();
}

Result<SpanningForestSketch> SpanningForestSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  auto frame = wire::ParseFrame(bytes, wire::FrameType::kSpanningForest);
  if (!frame.ok()) return frame.status();
  wire::Reader header(frame->header);
  uint64_t n = 0, max_rank = 0, seed = 0;
  Params params;
  std::vector<bool> active;
  GMS_RETURN_IF_ERROR(header.U64(&n));
  GMS_RETURN_IF_ERROR(header.U64(&max_rank));
  GMS_RETURN_IF_ERROR(header.U64(&seed));
  GMS_RETURN_IF_ERROR(ReadForestParams(&header, &params));
  GMS_RETURN_IF_ERROR(header.BoolVec(&active, /*max_size=*/size_t{1} << 32));
  GMS_RETURN_IF_ERROR(header.ExpectEnd());
  if (n < 1 || n > (uint64_t{1} << 32) || max_rank < 2 || max_rank > n ||
      params.rounds < 1 || active.size() != n) {
    return Status::InvalidArgument("wire: forest shape out of range");
  }
  // Shape-implied payload size BEFORE construction: the arena allocation is
  // then bounded by the bytes the caller actually supplied, so a short
  // hostile frame with huge header fields is rejected up front.
  auto words = ForestStateWords(static_cast<size_t>(n),
                                static_cast<size_t>(max_rank), params.config);
  if (!words.ok()) return words.status();
  uint64_t num_active = 0;
  for (bool a : active) num_active += a ? 1 : 0;
  if (!wire::PayloadMatchesShape(
          frame->payload.size(),
          {num_active, static_cast<uint64_t>(params.rounds), *words})) {
    return Status::InvalidArgument(
        "wire: forest payload size disagrees with the header shape");
  }
  SpanningForestSketch sketch(static_cast<size_t>(n),
                              static_cast<size_t>(max_rank), seed, params,
                              &active);
  wire::Reader payload(frame->payload);
  GMS_RETURN_IF_ERROR(sketch.ReadCells(&payload));
  GMS_RETURN_IF_ERROR(payload.ExpectEnd());
  return sketch;
}

size_t SpanningForestSketch::SpaceBytes() const {
  std::vector<uint8_t> frame;
  Serialize(&frame);
  return frame.size();
}

size_t SpanningForestSketch::MemoryBytes() const {
  return arena_.size() * sizeof(uint64_t);
}

size_t SpanningForestSketch::CellsPerVertex() const {
  size_t total = 0;
  for (const auto& shape : round_shapes_) total += shape->TotalCells();
  return total;
}

}  // namespace gms
