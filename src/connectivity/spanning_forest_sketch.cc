#include "connectivity/spanning_forest_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "connectivity/incidence.h"
#include "graph/union_find.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"

namespace gms {

namespace {

int DefaultRounds(size_t n, const SketchConfig& config) {
  int log_n = 1;
  while ((size_t{1} << log_n) < n) ++log_n;
  return log_n + config.extra_boruvka_rounds;
}

}  // namespace

SpanningForestSketch::SpanningForestSketch(size_t n, size_t max_rank,
                                           uint64_t seed, const Params& params,
                                           const std::vector<bool>* active)
    : n_(n),
      rounds_(params.rounds > 0 ? params.rounds
                                : DefaultRounds(n, params.config)),
      threads_(params.threads),
      codec_(n, max_rank),
      states_(n) {
  GMS_CHECK(active == nullptr || active->size() == n);
  Rng rng(seed);
  round_shapes_.reserve(static_cast<size_t>(rounds_));
  for (int t = 0; t < rounds_; ++t) {
    round_shapes_.push_back(std::make_shared<const L0Shape>(
        codec_.DomainSize(), params.config, rng.Fork()));
  }
  for (VertexId v = 0; v < n; ++v) {
    if (active != nullptr && !(*active)[v]) continue;
    states_[v].reserve(static_cast<size_t>(rounds_));
    for (int t = 0; t < rounds_; ++t) {
      states_[v].emplace_back(round_shapes_[static_cast<size_t>(t)].get());
    }
  }
}

void SpanningForestSketch::ApplyToRound(int t, const Hyperedge& e, u128 index,
                                        int delta) {
  const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
  int level = shape.LevelOf(index);
  uint64_t power = shape.level_shape(level).FingerprintPower(index);
  for (VertexId v : e) {
    GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
    int64_t coeff = IncidenceCoefficient(e, v) * delta;
    states_[v][static_cast<size_t>(t)].UpdateWithPower(index, coeff, level,
                                                       power);
  }
}

void SpanningForestSketch::Update(const Hyperedge& e, int delta) {
  GMS_CHECK_MSG(e.size() <= codec_.max_rank(), "hyperedge exceeds max_rank");
  UpdateEncoded(e, codec_.Encode(e), delta);
}

void SpanningForestSketch::UpdateEncoded(const Hyperedge& e, u128 index,
                                         int delta) {
  for (int t = 0; t < rounds_; ++t) ApplyToRound(t, e, index, delta);
}

void SpanningForestSketch::UpdateLocal(VertexId v, const Hyperedge& e,
                                       int delta) {
  GMS_CHECK_MSG(e.Contains(v), "UpdateLocal: vertex not in hyperedge");
  GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
  u128 index = codec_.Encode(e);
  int64_t coeff = IncidenceCoefficient(e, v) * delta;
  for (int t = 0; t < rounds_; ++t) {
    const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
    int level = shape.LevelOf(index);
    uint64_t power = shape.level_shape(level).FingerprintPower(index);
    states_[v][static_cast<size_t>(t)].UpdateWithPower(index, coeff, level,
                                                       power);
  }
}

void SpanningForestSketch::Process(std::span<const StreamUpdate> updates) {
  // Encode once per update (the combinadic rank is the same for every
  // round), then hand each worker a contiguous block of rounds: round
  // columns are disjoint state, so no worker ever touches another's cells.
  std::vector<u128> indices(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.size() <= codec_.max_rank(),
                  "hyperedge exceeds max_rank");
    indices[j] = codec_.Encode(updates[j].edge);
  }
  ParallelFor(threads_, static_cast<size_t>(rounds_),
              [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t) {
                  for (size_t j = 0; j < updates.size(); ++j) {
                    ApplyToRound(static_cast<int>(t), updates[j].edge,
                                 indices[j], updates[j].delta);
                  }
                }
              });
}

void SpanningForestSketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

void SpanningForestSketch::RemoveHyperedges(
    const std::vector<Hyperedge>& edges) {
  for (const auto& e : edges) Update(e, -1);
}

Result<Hypergraph> SpanningForestSketch::ExtractSpanningGraph(
    size_t threads) const {
  if (threads == 0) threads = threads_;
  Hypergraph result(n_);
  UnionFind uf(n_);
  std::vector<VertexId> active_vertices;
  for (VertexId v = 0; v < n_; ++v) {
    if (IsActive(v)) active_vertices.push_back(v);
  }
  if (active_vertices.size() <= 1) return result;

  for (int t = 0; t < rounds_; ++t) {
    // Group active vertices by current component; comp[v] snapshots the
    // component index so the parallel summation below never touches the
    // (path-compressing, hence mutating) union-find.
    std::vector<std::vector<VertexId>> groups;
    std::vector<int64_t> comp(n_, -1);
    {
      std::vector<int64_t> dense(n_, -1);
      for (VertexId v : active_vertices) {
        VertexId r = uf.Find(v);
        if (dense[r] < 0) {
          dense[r] = static_cast<int64_t>(groups.size());
          groups.emplace_back();
        }
        comp[v] = dense[r];
        groups[static_cast<size_t>(dense[r])].push_back(v);
      }
    }
    if (groups.size() <= 1) break;

    // Sample one crossing hyperedge per component from the summed sketch.
    // Components are independent read-only reductions over this round's
    // states, so they fan out across the pool; merging stays serial and in
    // group order, which keeps the decode deterministic.
    std::vector<Hyperedge> found(groups.size());
    std::vector<char> has_found(groups.size(), 0);
    ParallelFor(threads, groups.size(), [&](size_t begin, size_t end) {
      for (size_t g = begin; g < end; ++g) {
        const auto& group = groups[g];
        L0State acc(round_shapes_[static_cast<size_t>(t)].get());
        for (VertexId v : group) {
          acc.Add(states_[v][static_cast<size_t>(t)]);
        }
        auto sample = acc.Sample();
        if (!sample.ok()) continue;  // isolated component or sampler failure
        auto decoded = codec_.Decode(sample->index);
        if (!decoded.ok()) continue;  // corrupted sample; skip defensively
        const Hyperedge& e = *decoded;
        // Sanity: a genuine sample crosses the component boundary and
        // touches only active vertices.
        bool valid = std::llabs(sample->value) <
                         static_cast<int64_t>(codec_.max_rank()) &&
                     sample->value != 0;
        bool any_in = false, any_out = false;
        for (VertexId v : e) {
          if (!IsActive(v)) valid = false;
          (comp[v] == static_cast<int64_t>(g) ? any_in : any_out) = true;
        }
        if (!valid || !any_in || !any_out) continue;
        found[g] = e;
        has_found[g] = 1;
      }
    });
    for (size_t g = 0; g < groups.size(); ++g) {
      if (!has_found[g]) continue;
      const Hyperedge& e = found[g];
      bool merged = false;
      for (size_t i = 1; i < e.size(); ++i) merged |= uf.Union(e[0], e[i]);
      if (merged) result.AddEdge(e);
    }
  }
  return result;
}

size_t SpanningForestSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& per_round : states_) {
    for (const auto& state : per_round) total += state.MemoryBytes();
  }
  return total;
}

size_t SpanningForestSketch::CellsPerVertex() const {
  size_t total = 0;
  for (const auto& shape : round_shapes_) total += shape->TotalCells();
  return total;
}

}  // namespace gms
