#include "connectivity/spanning_forest_sketch.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>

#include "connectivity/incidence.h"
#include "graph/union_find.h"
#include "stream/sharded_merge.h"
#include "stream/stream_driver.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {

namespace {

int DefaultRounds(size_t n, const SketchConfig& config) {
  int log_n = 1;
  while ((size_t{1} << log_n) < n) ++log_n;
  return log_n + config.extra_boruvka_rounds;
}

// Incremental extraction: component accumulators cover fixed WINDOWS of
// this many rounds. Round t >= 1 lives in window [w0, w0 + K) with
// w0 = 1 + K * ((t-1) / K), and every component's block covers the full
// window, so uniting two components is one whole-block field addition and
// an unchanged component costs NOTHING until the window ends. Small K
// bounds the wasted accumulation when the decode finishes early (it
// usually does -- a few rounds connect everything); large K amortizes the
// one full member re-sum per window boundary. Round 0 needs no window at
// all: its components are singletons and sample straight from the arena.
constexpr int kAccWindowRounds = 4;

int WindowStart(int t) {
  return 1 + kAccWindowRounds * ((t - 1) / kAccWindowRounds);
}

// Reusable per-thread extraction scratch. Pool workers are long-lived, so
// during a Finalize that fans R forest extractions across the pool each
// worker allocates its block arena once and reuses it for every forest it
// owns; repeated Finalize calls reuse it again.
struct ExtractScratch {
  std::vector<uint64_t> blocks;      // equally-sized accumulator blocks
  std::vector<uint64_t> block_masks; // per block, kAccWindowRounds level
                                     // masks (OR of the members' column
                                     // masks; clear bit => segment zero)
  std::vector<int64_t> block_of;     // pre-union root vertex -> block id
  std::vector<int64_t> free_blocks;  // retired ids (windows shrink, so
                                     // capacity always suffices for reuse)
};

ExtractScratch& TlsExtractScratch() {
  static thread_local ExtractScratch scratch;
  return scratch;
}

}  // namespace

void AccumulateExtractStats(const ExtractStats& in, ExtractStats* out) {
  out->rounds_run = std::max(out->rounds_run, in.rounds_run);
  out->early_exit = out->early_exit || in.early_exit;
  out->summed_words += in.summed_words;
  out->sample_attempts += in.sample_attempts;
  out->decode_attempts += in.decode_attempts;
  out->edges_found += in.edges_found;
  out->sparse_exact_forests += in.sparse_exact_forests;
  if (out->groups_per_round.size() < in.groups_per_round.size()) {
    out->groups_per_round.resize(in.groups_per_round.size(), 0);
  }
  for (size_t i = 0; i < in.groups_per_round.size(); ++i) {
    out->groups_per_round[i] += in.groups_per_round[i];
  }
}

void WriteForestParams(const ForestSketchParams& params, wire::Writer* w) {
  WriteSketchConfig(params.config, w);
  w->I32(params.rounds);
}

Status ReadForestParams(wire::Reader* r, ForestSketchParams* params) {
  GMS_RETURN_IF_ERROR(ReadSketchConfig(r, &params->config));
  GMS_RETURN_IF_ERROR(r->I32(&params->rounds));
  if (params->rounds < 0 || params->rounds > (1 << 20)) {
    return Status::InvalidArgument("wire: forest rounds out of range");
  }
  params->engine = EngineParams();
  return Status::OK();
}

Result<uint64_t> ForestStateWords(size_t n, size_t max_rank,
                                  const SketchConfig& config) {
  auto domain = EdgeCodec::DomainSizeFor(n, max_rank);
  if (!domain.ok()) return domain.status();
  return L0StateWords(*domain, config);
}

SpanningForestSketch::SpanningForestSketch(size_t n, size_t max_rank,
                                           uint64_t seed, const Params& params,
                                           const std::vector<bool>* active)
    : n_(n),
      rounds_(params.rounds > 0 ? params.rounds
                                : DefaultRounds(n, params.config)),
      seed_(seed),
      params_(params),
      codec_(n, max_rank),
      state_index_(n, -1) {
  GMS_CHECK(active == nullptr || active->size() == n);
  Rng rng(seed);
  round_shapes_.reserve(static_cast<size_t>(rounds_));
  for (int t = 0; t < rounds_; ++t) {
    round_shapes_.push_back(std::make_shared<const L0Shape>(
        codec_.DomainSize(), params.config, rng.Fork()));
  }
  size_t num_active = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (active != nullptr && !(*active)[v]) continue;
    state_index_[v] = static_cast<int64_t>(num_active++);
  }
  num_active_ = num_active;
  state_words_ = round_shapes_[0]->TotalWords();
  // Lazily-zeroed mapping (huge-page advised): untouched pages cost
  // nothing, which is what makes CloneEmpty() and Clear() cheap.
  arena_ =
      ZeroedBuffer(num_active * static_cast<size_t>(rounds_) * state_words_);
  dirty_words_per_round_ = (num_active + 63) / 64;
  dirty_.assign(static_cast<size_t>(rounds_) * dirty_words_per_round_, 0);
  level_mask_.assign(num_active * static_cast<size_t>(rounds_), 0);
  if (params.config.sparse_threshold > 0 && num_active > 0) {
    counters_.assign(num_active, 0);
    buffers_.resize(num_active);
    sparse_remaining_ = num_active;
  }
}

SpanningForestSketch::SpanningForestSketch(const SpanningForestSketch& other,
                                           CloneEmptyTag)
    : n_(other.n_),
      rounds_(other.rounds_),
      seed_(other.seed_),
      params_(other.params_),
      codec_(other.codec_),
      round_shapes_(other.round_shapes_),
      state_index_(other.state_index_),
      num_active_(other.num_active_),
      state_words_(other.state_words_),
      arena_(other.arena_.size()),
      dirty_words_per_round_(other.dirty_words_per_round_),
      dirty_(other.dirty_.size(), 0),
      level_mask_(other.level_mask_.size(), 0),
      counters_(other.counters_.size(), 0),
      buffers_(other.buffers_.size()),
      sparse_remaining_(other.counters_.empty() ? 0 : other.num_active_) {}

void SpanningForestSketch::ApplyToRound(int t, const Hyperedge& e,
                                        const PreparedCoord& pc, int delta,
                                        const char* endpoint_dense) {
  const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
  const int level = shape.LevelOfFolded(pc.fold);
  const SSparseShape& ls = shape.level_shape(level);
  const size_t level_off = static_cast<size_t>(level) * shape.SegmentWords();
  const size_t cells = static_cast<size_t>(ls.NumCells());
  const int rows = ls.rows();
  // Everything below the incidence sign depends only on the key, not the
  // endpoint: resolve the target cells and the +delta-magnitude deltas once
  // and apply them per endpoint with the coefficient from Section 4.1's
  // encoding (|e|-1 at min e, -1 elsewhere; vertices_ is sorted, so the
  // min is position 0 -- no per-vertex membership search).
  GMS_DCHECK(rows <= kMaxSketchRows);
  size_t idx[kMaxSketchRows];
  for (int r = 0; r < rows; ++r) {
    idx[r] = static_cast<size_t>(r) * ls.buckets() +
             static_cast<size_t>(ls.BucketFolded(r, pc.fold));
  }
  const uint64_t power = shape.basis().PowerFromExp(pc.exponent);
  const uint64_t fp_unit = FpMul(FpFromInt64(delta), power);
  const u128 is_unit =
      pc.index * static_cast<u128>(static_cast<i128>(delta));
  const int64_t head = static_cast<int64_t>(e.size()) - 1;
  for (size_t pos = 0; pos < e.size(); ++pos) {
    // The hybrid column ingest absorbed the unflagged endpoints into their
    // exact sparse buffers during the serial pre-pass; only the dense ones
    // reach the arena here.
    if (endpoint_dense != nullptr && !endpoint_dense[pos]) continue;
    const VertexId v = e[pos];
    GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
    MarkDirty(t, v);
    MarkLevel(t, v, level);
    uint64_t* seg = ArenaAt(v, t) + level_off;
    if (pos == 0) {
      const int64_t wdelta = head * delta;
      const uint64_t fp =
          head == 1 ? fp_unit : FpMul(FpReduce(static_cast<u128>(head)), fp_unit);
      SSparseSegmentApply(seg, idx, rows, cells, wdelta,
                          is_unit * static_cast<u128>(head), fp);
    } else {
      SSparseSegmentApply(seg, idx, rows, cells, -delta, -is_unit,
                          FpNeg(fp_unit));
    }
  }
}

void SpanningForestSketch::PrefetchRound(int t, const Hyperedge& e,
                                         const PreparedCoord& pc) const {
  const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
  const int level = shape.LevelOfFolded(pc.fold);
  const SSparseShape& ls = shape.level_shape(level);
  const size_t cells = static_cast<size_t>(ls.NumCells());
  const size_t level_off = static_cast<size_t>(level) * shape.SegmentWords();
  for (VertexId v : e) {
    if (!IsActive(v)) continue;
    const uint64_t* seg = ArenaAt(v, t) + level_off;
    for (int r = 0; r < ls.rows(); ++r) {
      const size_t i = static_cast<size_t>(r) * ls.buckets() +
                       static_cast<size_t>(ls.BucketFolded(r, pc.fold));
      __builtin_prefetch(seg + i, 1, 1);
      __builtin_prefetch(seg + cells + i, 1, 1);
      __builtin_prefetch(seg + 2 * cells + i, 1, 1);
      __builtin_prefetch(seg + 3 * cells + i, 1, 1);
    }
  }
}

void SpanningForestSketch::ApplyLocalOrd(size_t ord, const PreparedCoord& pc,
                                         int64_t coeff, bool concurrent) {
  for (int t = 0; t < rounds_; ++t) {
    const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
    const int level = shape.LevelOfFolded(pc.fold);
    if (concurrent) {
      MarkDirtyOrdConcurrent(t, ord);
    } else {
      MarkDirtyOrd(t, ord);
    }
    MarkLevelOrd(t, ord, level);
    SSparseSegmentUpdate(shape.level_shape(level),
                         ColAt(ord, t) +
                             static_cast<size_t>(level) * shape.SegmentWords(),
                         pc, coeff, shape.basis().PowerFromExp(pc.exponent));
  }
}

void SpanningForestSketch::ReplayBufferRounds(size_t ord, int w0, int w1,
                                              uint64_t* dst,
                                              uint64_t* masks) const {
  for (const SparseEntry& entry : buffers_[ord]) {
    const PreparedCoord pc = PrepareCoord(entry.index);
    for (int r = w0; r < w1; ++r) {
      const L0Shape& shape = *round_shapes_[static_cast<size_t>(r)];
      const int level = shape.LevelOfFolded(pc.fold);
      masks[r - w0] |= LevelMaskBit(level);
      SSparseSegmentUpdate(
          shape.level_shape(level),
          dst + static_cast<size_t>(r - w0) * state_words_ +
              static_cast<size_t>(level) * shape.SegmentWords(),
          pc, entry.value, shape.basis().PowerFromExp(pc.exponent));
    }
  }
}

void SpanningForestSketch::EscalateOrdinal(size_t ord, bool concurrent) {
  // Replay the buffer straight into ord's arena rows (they share the
  // accumulator layout: rounds contiguous at stride state_words_), with the
  // exact level bits landing in ord's own level-mask words.
  if (!buffers_[ord].empty()) {
    ReplayBufferRounds(ord, 0, rounds_, ColAt(ord, 0),
                       level_mask_.data() + ord * static_cast<size_t>(rounds_));
    for (int t = 0; t < rounds_; ++t) {
      if (concurrent) {
        MarkDirtyOrdConcurrent(t, ord);
      } else {
        MarkDirtyOrd(t, ord);
      }
    }
    buffers_[ord].clear();
    buffers_[ord].shrink_to_fit();
  }
  if (concurrent) {
    __atomic_fetch_sub(&sparse_remaining_, size_t{1}, __ATOMIC_RELAXED);
  } else {
    --sparse_remaining_;
  }
}

bool SpanningForestSketch::AbsorbUpdate(size_t ord, const PreparedCoord& pc,
                                        int64_t coeff, bool concurrent) {
  const uint32_t threshold = params_.config.sparse_threshold;
  const uint32_t count = counters_[ord];
  if (count >= threshold) {
    // This is update threshold + 1: saturate the counter (it never moves
    // again) and cross to the dense phase; the caller applies the current
    // update through the kernel.
    counters_[ord] = threshold + 1;
    EscalateOrdinal(ord, concurrent);
    return false;
  }
  counters_[ord] = count + 1;
  SparseBufferAdd(&buffers_[ord], pc.index, coeff);
  return true;
}

void SpanningForestSketch::Update(const Hyperedge& e, int delta) {
  GMS_CHECK_MSG(e.size() <= codec_.max_rank(), "hyperedge exceeds max_rank");
  UpdateEncoded(e, codec_.Encode(e), delta);
}

void SpanningForestSketch::UpdateEncoded(const Hyperedge& e, u128 index,
                                         int delta) {
  UpdatePrepared(e, PrepareCoord(index), delta);
}

void SpanningForestSketch::UpdatePrepared(const Hyperedge& e,
                                          const PreparedCoord& pc, int delta) {
  if (sparse_remaining_ == 0) {
    // Every endpoint is dense (or the sparse phase is disabled): the
    // pre-hybrid fast path, unchanged.
    for (int t = 0; t < rounds_; ++t) ApplyToRound(t, e, pc, delta);
    return;
  }
  // Route each endpoint through its own phase with its Section 4.1
  // incidence coefficient ((|e|-1) at the sorted head, -1 elsewhere).
  const int64_t head = static_cast<int64_t>(e.size()) - 1;
  for (size_t pos = 0; pos < e.size(); ++pos) {
    const VertexId v = e[pos];
    GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
    const size_t ord = static_cast<size_t>(state_index_[v]);
    const int64_t coeff = pos == 0 ? head * delta : -int64_t{delta};
    if (!Escalated(ord) &&
        AbsorbUpdate(ord, pc, coeff, /*concurrent=*/false)) {
      continue;
    }
    ApplyLocalOrd(ord, pc, coeff, /*concurrent=*/false);
  }
}

void SpanningForestSketch::UpdateLocal(VertexId v, const Hyperedge& e,
                                       int delta) {
  GMS_CHECK_MSG(e.Contains(v), "UpdateLocal: vertex not in hyperedge");
  GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
  const PreparedCoord pc = PrepareCoord(codec_.Encode(e));
  const int64_t coeff = IncidenceCoefficient(e, v) * delta;
  const size_t ord = static_cast<size_t>(state_index_[v]);
  if (sparse_remaining_ != 0 && !Escalated(ord) &&
      AbsorbUpdate(ord, pc, coeff, /*concurrent=*/false)) {
    return;
  }
  ApplyLocalOrd(ord, pc, coeff, /*concurrent=*/false);
}

void SpanningForestSketch::ApplyUpdateBatch(size_t thr_id, VertexId v,
                                            std::span<const VertexUpdate> batch) {
  (void)thr_id;
  if (batch.empty()) return;
  GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
  const size_t ord = static_cast<size_t>(state_index_[v]);
  size_t start = 0;
  // Phase gate: counters/buffers are vertex-owned (appliers hold disjoint
  // vertex shards), but sparse_remaining_ is sketch-wide and escalations on
  // other appliers decrement it concurrently -- load it relaxed.
  if (__atomic_load_n(&sparse_remaining_, __ATOMIC_RELAXED) != 0 &&
      !Escalated(ord)) {
    // Absorb the batch into v's exact buffer in stream order until (if
    // ever) an entry crosses the threshold; that entry and the rest of the
    // batch then replay densely below, matching the serial path bit for
    // bit. A fully absorbed batch touches no arena cell and no bitmap.
    while (start < batch.size() &&
           AbsorbUpdate(ord, batch[start].pc, batch[start].coeff,
                        /*concurrent=*/true)) {
      ++start;
    }
    if (start == batch.size()) return;
  }
  for (int t = 0; t < rounds_; ++t) {
    const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
    uint64_t* col = ArenaAt(v, t);
    uint64_t levels = 0;
    for (const VertexUpdate& u : batch.subspan(start)) {
      const int level = shape.LevelOfFolded(u.pc.fold);
      levels |= LevelMaskBit(level);
      SSparseSegmentUpdate(
          shape.level_shape(level),
          col + static_cast<size_t>(level) * shape.SegmentWords(), u.pc,
          u.coeff, shape.basis().PowerFromExp(u.pc.exponent));
    }
    MarkDirtyConcurrent(t, v);
    // The level-mask word is vertex-major, hence exclusively this
    // applier's; one plain OR covers the whole batch.
    level_mask_[ord * static_cast<size_t>(rounds_) + static_cast<size_t>(t)] |=
        levels;
  }
}

void SpanningForestSketch::Process(std::span<const StreamUpdate> updates) {
  if (UseGutterDriver(params_.engine, updates.size())) {
    DriveStream(this, updates, DriverParamsFromEngine(params_.engine));
    return;
  }
  if (UseShardedMerge(params_.engine, updates.size())) {
    ShardedMergeIngest(
        this, updates,
        ShardedMergeShards(params_.engine.threads, updates.size()));
    return;
  }
  ProcessColumns(updates);
}

void SpanningForestSketch::ProcessColumns(
    std::span<const StreamUpdate> updates) {
  // Encode and prepare once per update (the combinadic rank, key fold, and
  // exponent reduction are the same for every round), then hand each worker
  // a contiguous block of rounds: round columns are disjoint state -- and
  // so are their round-major dirty-bitmap words -- so no worker ever
  // touches another's cells.
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.size() <= codec_.max_rank(),
                  "hyperedge exceeds max_rank");
    prepared[j] = PrepareCoord(codec_.Encode(updates[j].edge));
  }
  // Hybrid pre-pass: counters and buffers are per-vertex stream-order
  // state, so they cannot be touched from the round-sharded fan-out (each
  // worker would bump them once per round). Absorb every sparse endpoint
  // serially here -- escalation replays land in the escalating vertex's
  // arena rows before any worker starts -- and flag the endpoints that
  // must still reach the arena. When nothing is sparse (the common steady
  // state, and the whole sketch when the threshold is 0) this block is a
  // single predictable branch.
  std::vector<size_t> endpoint_off;
  std::vector<char> endpoint_dense;
  bool filtered = false;
  if (sparse_remaining_ != 0) {
    filtered = true;
    endpoint_off.resize(updates.size() + 1);
    size_t total = 0;
    for (size_t j = 0; j < updates.size(); ++j) {
      endpoint_off[j] = total;
      total += updates[j].edge.size();
    }
    endpoint_off[updates.size()] = total;
    endpoint_dense.assign(total, 0);
    bool any_dense = false;
    for (size_t j = 0; j < updates.size(); ++j) {
      const Hyperedge& e = updates[j].edge;
      const int delta = updates[j].delta;
      const int64_t head = static_cast<int64_t>(e.size()) - 1;
      for (size_t pos = 0; pos < e.size(); ++pos) {
        const VertexId v = e[pos];
        GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
        const size_t ord = static_cast<size_t>(state_index_[v]);
        const int64_t coeff = pos == 0 ? head * delta : -int64_t{delta};
        if (!Escalated(ord) &&
            AbsorbUpdate(ord, prepared[j], coeff, /*concurrent=*/false)) {
          continue;
        }
        endpoint_dense[endpoint_off[j] + pos] = 1;
        any_dense = true;
      }
    }
    if (!any_dense) return;  // the whole span was absorbed exactly
  }
  // Lookahead distance for the cell prefetch: far enough to cover DRAM
  // latency across the ~8 lines an update touches, near enough that the
  // lines are still resident when reached.
  constexpr size_t kPrefetchAhead = 12;
  ParallelFor(params_.engine.threads, static_cast<size_t>(rounds_),
              [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t) {
                  for (size_t j = 0; j < updates.size(); ++j) {
                    const size_t jp = j + kPrefetchAhead;
                    if (jp < updates.size()) {
                      PrefetchRound(static_cast<int>(t), updates[jp].edge,
                                    prepared[jp]);
                    }
                    ApplyToRound(static_cast<int>(t), updates[j].edge,
                                 prepared[j], updates[j].delta,
                                 filtered
                                     ? endpoint_dense.data() + endpoint_off[j]
                                     : nullptr);
                  }
                }
              });
}

void SpanningForestSketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

void SpanningForestSketch::RemoveHyperedges(
    const std::vector<Hyperedge>& edges) {
  if (edges.empty()) return;
  // Batch the subtraction through the column path: one encode per edge and
  // the round fan-out / prefetch of Process, which the k-skeleton peeling
  // (repeated whole-layer subtractions) leans on heavily.
  std::vector<StreamUpdate> updates;
  updates.reserve(edges.size());
  for (const auto& e : edges) updates.emplace_back(e, -1);
  ProcessColumns(updates);
}

bool SpanningForestSketch::SampleGroupEdge(int t, const uint64_t* src,
                                           uint64_t src_mask,
                                           const std::vector<int64_t>& comp,
                                           size_t g, Hyperedge* out,
                                           L0SampleProbe* probe) const {
  auto sample = L0SampleRawMasked(*round_shapes_[static_cast<size_t>(t)], src,
                                  src_mask, probe);
  if (!sample.ok()) return false;  // isolated component or sampler failure
  auto decoded = codec_.Decode(sample->index);
  if (!decoded.ok()) return false;  // corrupted sample; skip defensively
  const Hyperedge& e = *decoded;
  // Sanity: a genuine sample crosses the component boundary and touches
  // only active vertices.
  bool valid =
      std::llabs(sample->value) < static_cast<int64_t>(codec_.max_rank()) &&
      sample->value != 0;
  bool any_in = false, any_out = false;
  for (VertexId v : e) {
    if (!IsActive(v)) valid = false;
    (comp[v] == static_cast<int64_t>(g) ? any_in : any_out) = true;
  }
  if (!valid || !any_in || !any_out) return false;
  *out = e;
  return true;
}

Result<Hypergraph> SpanningForestSketch::ExtractSpanningGraph(
    size_t threads, ExtractStats* stats) const {
  return ExtractImpl(threads, stats, /*incremental=*/true);
}

Result<Hypergraph> SpanningForestSketch::ExtractSpanningGraphReference(
    size_t threads, ExtractStats* stats) const {
  return ExtractImpl(threads, stats, /*incremental=*/false);
}

QueryResult<Hypergraph> SpanningForestSketch::Query(size_t threads) const {
  ExtractStats stats;
  auto graph = ExtractImpl(threads, &stats, /*incremental=*/true);
  if (!graph.ok()) return QueryResult<Hypergraph>(graph.status());
  return QueryResult<Hypergraph>(std::move(*graph), std::move(stats));
}

bool SpanningForestSketch::SnapshotDirty() const {
  for (uint64_t w : dirty_) {
    if (w != 0) return true;
  }
  for (const auto& buf : buffers_) {
    if (!buf.empty()) return true;
  }
  return false;
}

uint64_t SpanningForestSketch::SparsePreRound(UnionFind* uf,
                                              Hypergraph* result) const {
  uint64_t exact_edges = 0;
  for (VertexId v = 0; v < n_; ++v) {
    if (!IsActive(v)) continue;
    const size_t ord = static_cast<size_t>(state_index_[v]);
    if (Escalated(ord)) continue;
    for (const SparseEntry& entry : buffers_[ord]) {
      auto decoded = codec_.Decode(entry.index);
      if (!decoded.ok()) continue;  // hostile key; skip defensively
      const Hyperedge& e = *decoded;
      bool valid = true;
      for (VertexId u : e) valid = valid && IsActive(u);
      if (!valid) continue;  // only hostile frames buffer such keys
      bool merged = false;
      for (size_t i = 1; i < e.size(); ++i) merged |= uf->Union(e[0], e[i]);
      if (merged) {
        result->AddEdge(e);
        ++exact_edges;
      }
    }
  }
  return exact_edges;
}

Result<Hypergraph> SpanningForestSketch::ExtractSparseExact(
    ExtractStats* stats) const {
  GMS_CHECK_MSG(AllSparse(),
                "ExtractSparseExact: an escalated column needs sampling");
  if (stats != nullptr) {
    *stats = ExtractStats();
    stats->sparse_exact_forests = 1;
  }
  Hypergraph result(n_);
  if (num_active_ <= 1) return result;
  UnionFind uf(n_);
  const uint64_t exact_edges = SparsePreRound(&uf, &result);
  if (stats != nullptr) stats->edges_found += exact_edges;
  return result;
}

Result<Hypergraph> SpanningForestSketch::ExtractImpl(size_t threads,
                                                     ExtractStats* stats,
                                                     bool incremental) const {
  if (threads == 0) threads = params_.engine.threads;
  Hypergraph result(n_);
  UnionFind uf(n_);
  std::vector<VertexId> active_vertices;
  active_vertices.reserve(num_active_);
  for (VertexId v = 0; v < n_; ++v) {
    if (IsActive(v)) active_vertices.push_back(v);
  }
  if (stats != nullptr) *stats = ExtractStats();
  if (active_vertices.size() <= 1) return result;

  // Hybrid exact pre-round: a sparse-phase vertex's buffer lists its net
  // incident hyperedges VERBATIM, so they feed Borůvka directly -- no
  // sampling, no decode attempts. Deterministic (vertices in active order,
  // entries in key order) and shared by both decode paths, so the
  // incremental-vs-reference stats stay identical.
  const bool hybrid = Hybrid();
  if (hybrid) {
    const uint64_t exact_edges = SparsePreRound(&uf, &result);
    if (stats != nullptr) stats->edges_found += exact_edges;
  }

  // Blocks live in the calling thread's scratch; inner parallel phases
  // write disjoint blocks, and every phase boundary is a pool join, so the
  // sharing is race-free.
  ExtractScratch& es = TlsExtractScratch();
  if (incremental) {
    es.block_of.assign(n_, -1);
    es.free_blocks.clear();
  }
  int block_w0 = -1;   // materialized window [block_w0, block_w1)
  int block_w1 = -1;
  size_t block_words = 0;
  size_t blocks_used = 0;

  std::atomic<uint64_t> summed_words{0};
  std::atomic<uint64_t> sample_attempts{0};
  std::atomic<uint64_t> decode_attempts{0};
  std::atomic<bool> round_saw_nonzero{false};

  std::vector<std::vector<VertexId>> groups;
  std::vector<VertexId> group_root;  // pre-union root of each group
  std::vector<int64_t> comp(n_, -1);
  std::vector<int64_t> dense(n_, -1);

  for (int t = 0; t < rounds_; ++t) {
    // Group active vertices by current component; comp[v] snapshots the
    // component index so the parallel phases below never touch the
    // (path-compressing, hence mutating) union-find.
    groups.clear();
    group_root.clear();
    std::fill(comp.begin(), comp.end(), -1);
    std::fill(dense.begin(), dense.end(), -1);
    for (VertexId v : active_vertices) {
      VertexId r = uf.Find(v);
      if (dense[r] < 0) {
        dense[r] = static_cast<int64_t>(groups.size());
        groups.emplace_back();
        group_root.push_back(r);
      }
      comp[v] = dense[r];
      groups[static_cast<size_t>(dense[r])].push_back(v);
    }
    if (stats != nullptr) {
      stats->rounds_run = t + 1;
      stats->groups_per_round.push_back(groups.size());
    }
    if (groups.size() <= 1) break;

    // Window refill: the first round of each window rebuilds every
    // multi-vertex component's block from its members' arena rows (rounds
    // are contiguous per vertex, so the first member is one memcpy of the
    // whole window). This is the ONLY full re-sum; within the window,
    // blocks evolve purely through whole-block union merges.
    if (incremental && t >= 1 && WindowStart(t) != block_w0) {
      block_w0 = WindowStart(t);
      block_w1 = std::min(block_w0 + kAccWindowRounds, rounds_);
      block_words = static_cast<size_t>(block_w1 - block_w0) * state_words_;
      es.free_blocks.clear();
      std::fill(es.block_of.begin(), es.block_of.end(), -1);
      blocks_used = 0;
      std::vector<size_t> block_id(groups.size(), SIZE_MAX);
      for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].size() > 1) block_id[g] = blocks_used++;
      }
      if (es.blocks.size() < blocks_used * block_words) {
        es.blocks.resize(blocks_used * block_words);
      }
      if (es.block_masks.size() < blocks_used * kAccWindowRounds) {
        es.block_masks.resize(blocks_used * kAccWindowRounds);
      }
      ParallelFor(threads, groups.size(), [&](size_t begin, size_t end) {
        uint64_t local_words = 0;
        for (size_t g = begin; g < end; ++g) {
          if (block_id[g] == SIZE_MAX) continue;
          const auto& group = groups[g];
          uint64_t* dst = es.blocks.data() + block_id[g] * block_words;
          uint64_t* masks =
              es.block_masks.data() + block_id[g] * kAccWindowRounds;
          std::memset(dst, 0, block_words * sizeof(uint64_t));
          std::memset(masks, 0, kAccWindowRounds * sizeof(uint64_t));
          for (size_t i = 0; i < group.size(); ++i) {
            const size_t ord = static_cast<size_t>(state_index_[group[i]]);
            if (hybrid && !Escalated(ord)) {
              // A sparse member's measurement lives in its buffer, not the
              // (zero) arena: replay it exactly into the block.
              ReplayBufferRounds(ord, block_w0, block_w1, dst, masks);
              continue;
            }
            const uint64_t* src = ColAt(ord, block_w0);
            for (int r = block_w0; r < block_w1; ++r) {
              const size_t off =
                  static_cast<size_t>(r - block_w0) * state_words_;
              const uint64_t m = ColumnLevelMask(ord, r);
              masks[r - block_w0] |= m;
              local_words +=
                  L0AddRawMasked(*round_shapes_[static_cast<size_t>(r)],
                                 dst + off, src + off, m);
            }
          }
        }
        summed_words.fetch_add(local_words, std::memory_order_relaxed);
      });
      for (size_t g = 0; g < groups.size(); ++g) {
        if (block_id[g] != SIZE_MAX) {
          es.block_of[group_root[g]] = static_cast<int64_t>(block_id[g]);
        }
      }
    }

    // Sample one crossing hyperedge per component. Components are
    // independent read-only probes (singletons straight from the arena,
    // multi-vertex components from their window block; the reference path
    // re-sums instead), so they fan out across the pool. Shard boundaries
    // are cache-line aligned on the byte-per-group output arrays.
    std::vector<Hyperedge> found(groups.size());
    std::vector<char> has_found(groups.size(), 0);
    round_saw_nonzero.store(false, std::memory_order_relaxed);
    ParallelForAligned(
        threads, groups.size(), /*grain=*/64, [&](size_t begin, size_t end) {
          std::vector<uint64_t> acc;  // reference-path accumulator
          uint64_t local_samples = 0, local_decodes = 0, local_words = 0;
          bool local_nonzero = false;
          for (size_t g = begin; g < end; ++g) {
            const auto& group = groups[g];
            const uint64_t* src;
            // The reference path stays fully dense (mask = ~0): it is the
            // differential oracle that masked extraction must match.
            uint64_t src_mask = ~uint64_t{0};
            if (group.size() == 1) {
              // A still-singleton sparse vertex has an empty effective
              // buffer (the pre-round united the endpoints of every
              // decodable buffered edge), so its zero arena column IS its
              // exact round-t measurement -- no replay needed here.
              src = ArenaAt(group[0], t);
              if (incremental) {
                src_mask = ColumnLevelMask(
                    static_cast<size_t>(state_index_[group[0]]), t);
              }
            } else if (incremental && t == 0) {
              // The exact pre-round can unite components BEFORE the first
              // round, but accumulator windows only start at round 1:
              // accumulate round 0 on the fly (masked adds for dense
              // members, exact buffer replay for sparse ones).
              if (acc.empty()) acc.resize(state_words_);
              std::memset(acc.data(), 0, state_words_ * sizeof(uint64_t));
              uint64_t m = 0;
              for (VertexId member : group) {
                const size_t ord = static_cast<size_t>(state_index_[member]);
                if (hybrid && !Escalated(ord)) {
                  ReplayBufferRounds(ord, 0, 1, acc.data(), &m);
                  continue;
                }
                const uint64_t cm = ColumnLevelMask(ord, 0);
                m |= cm;
                local_words += L0AddRawMasked(*round_shapes_[0], acc.data(),
                                              ColAt(ord, 0), cm);
              }
              src = acc.data();
              src_mask = m;
            } else if (incremental) {
              const int64_t b = es.block_of[group_root[g]];
              GMS_DCHECK(b >= 0);
              src = es.blocks.data() +
                    static_cast<size_t>(b) * block_words +
                    static_cast<size_t>(t - block_w0) * state_words_;
              src_mask =
                  es.block_masks[static_cast<size_t>(b) * kAccWindowRounds +
                                 static_cast<size_t>(t - block_w0)];
            } else {
              // Reference path: re-sum every member from scratch. Starting
              // from an explicit zero block and field-adding EVERY member
              // (instead of memcpy-ing the first) is bit-identical -- each
              // cell op is exact with 0 as identity -- and lets sparse
              // members replay their buffers like the incremental path.
              if (acc.empty()) acc.resize(state_words_);
              std::memset(acc.data(), 0, state_words_ * sizeof(uint64_t));
              for (size_t i = 0; i < group.size(); ++i) {
                const size_t ord = static_cast<size_t>(state_index_[group[i]]);
                if (hybrid && !Escalated(ord)) {
                  uint64_t scratch_mask = 0;
                  ReplayBufferRounds(ord, t, t + 1, acc.data(), &scratch_mask);
                  continue;
                }
                L0AddRaw(*round_shapes_[static_cast<size_t>(t)], acc.data(),
                         ColAt(ord, t));
              }
              local_words += group.size() * state_words_;
              src = acc.data();
            }
            L0SampleProbe probe;
            Hyperedge e;
            ++local_samples;
            if (SampleGroupEdge(t, src, src_mask, comp, g, &e, &probe)) {
              found[g] = std::move(e);
              has_found[g] = 1;
            }
            local_decodes += static_cast<uint64_t>(probe.decode_attempts);
            local_nonzero |= probe.saw_nonzero;
          }
          sample_attempts.fetch_add(local_samples, std::memory_order_relaxed);
          decode_attempts.fetch_add(local_decodes, std::memory_order_relaxed);
          summed_words.fetch_add(local_words, std::memory_order_relaxed);
          if (local_nonzero) {
            round_saw_nonzero.store(true, std::memory_order_relaxed);
          }
        });

    // Contract: serial union in group order keeps the decode deterministic.
    size_t merges = 0;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (!has_found[g]) continue;
      const Hyperedge& e = found[g];
      bool merged = false;
      for (size_t i = 1; i < e.size(); ++i) merged |= uf.Union(e[0], e[i]);
      if (merged) {
        result.AddEdge(e);
        ++merges;
      }
    }
    if (stats != nullptr) stats->edges_found += merges;
    if (merges == 0) {
      if (!round_saw_nonzero.load(std::memory_order_relaxed)) {
        // Every remaining component's sketch is identically zero: the zero
        // measurement is zero in EVERY round's column, so later rounds
        // cannot merge anything either. (Both decode paths share this
        // rule, so their outputs stay bit-identical.)
        if (stats != nullptr) stats->early_exit = true;
        break;
      }
      continue;  // decode failures only; retry under fresh randomness
    }

    // Incremental maintenance: components that united this round get a
    // merged block for the remainder of the window -- one whole-block
    // field addition per part. Unchanged components keep their block and
    // cost nothing next round.
    const int tn = t + 1;
    if (!incremental || tn >= rounds_) continue;
    if (WindowStart(tn) != block_w0) continue;  // next round refills anyway
    // Bucket this round's groups by post-union root (dense[] is free for
    // reuse until the next round rebuilds it).
    std::fill(dense.begin(), dense.end(), -1);
    std::vector<std::vector<size_t>> sets;
    std::vector<VertexId> set_root;
    for (size_t g = 0; g < groups.size(); ++g) {
      const VertexId r = uf.Find(groups[g][0]);
      if (dense[r] < 0) {
        dense[r] = static_cast<int64_t>(sets.size());
        sets.emplace_back();
        set_root.push_back(r);
      }
      sets[static_cast<size_t>(dense[r])].push_back(g);
    }
    // Serial block-id assignment in set order (free list first): the id
    // sequence, like everything else here, never depends on the schedule.
    std::vector<size_t> merged_sets;
    std::vector<size_t> set_block;
    for (size_t s = 0; s < sets.size(); ++s) {
      if (sets[s].size() < 2) continue;
      size_t bid;
      if (!es.free_blocks.empty()) {
        bid = static_cast<size_t>(es.free_blocks.back());
        es.free_blocks.pop_back();
      } else {
        bid = blocks_used++;
      }
      merged_sets.push_back(s);
      set_block.push_back(bid);
    }
    if (merged_sets.empty()) continue;
    if (es.blocks.size() < blocks_used * block_words) {
      es.blocks.resize(blocks_used * block_words);
    }
    if (es.block_masks.size() < blocks_used * kAccWindowRounds) {
      es.block_masks.resize(blocks_used * kAccWindowRounds);
    }
    ParallelFor(
        threads, merged_sets.size(), [&](size_t begin, size_t end) {
          uint64_t local_words = 0;
          for (size_t j = begin; j < end; ++j) {
            const auto& parts = sets[merged_sets[j]];
            uint64_t* dst = es.blocks.data() + set_block[j] * block_words;
            uint64_t* dmask =
                es.block_masks.data() + set_block[j] * kAccWindowRounds;
            std::memset(dst, 0, block_words * sizeof(uint64_t));
            std::memset(dmask, 0, kAccWindowRounds * sizeof(uint64_t));
            for (size_t part : parts) {
              const auto& group = groups[part];
              const uint64_t* src;
              const uint64_t* smask = nullptr;  // null => singleton part
              size_t ord = 0;
              if (group.size() == 1) {
                ord = static_cast<size_t>(state_index_[group[0]]);
                if (hybrid && !Escalated(ord)) {
                  // Sparse singleton part: replay its buffer (empty for
                  // every stream-reachable state, but a hostile frame's
                  // block must still equal the reference re-sum).
                  ReplayBufferRounds(ord, block_w0, block_w1, dst, dmask);
                  continue;
                }
                src = ArenaAt(group[0], block_w0);
              } else {
                const size_t b =
                    static_cast<size_t>(es.block_of[group_root[part]]);
                src = es.blocks.data() + b * block_words;
                smask = es.block_masks.data() + b * kAccWindowRounds;
              }
              for (int r = block_w0; r < block_w1; ++r) {
                const size_t off =
                    static_cast<size_t>(r - block_w0) * state_words_;
                const uint64_t m = smask != nullptr
                                       ? smask[r - block_w0]
                                       : ColumnLevelMask(ord, r);
                dmask[r - block_w0] |= m;
                local_words +=
                    L0AddRawMasked(*round_shapes_[static_cast<size_t>(r)],
                                   dst + off, src + off, m);
              }
            }
          }
          summed_words.fetch_add(local_words, std::memory_order_relaxed);
        });
    // Retire the parts' blocks (their values are folded into the merged
    // block) and point the united roots at it; serial, in set order.
    for (size_t j = 0; j < merged_sets.size(); ++j) {
      for (size_t part : sets[merged_sets[j]]) {
        if (groups[part].size() > 1) {
          es.free_blocks.push_back(es.block_of[group_root[part]]);
        }
        es.block_of[group_root[part]] = -1;
      }
      es.block_of[set_root[merged_sets[j]]] =
          static_cast<int64_t>(set_block[j]);
    }
  }
  if (stats != nullptr) {
    stats->summed_words = summed_words.load(std::memory_order_relaxed);
    stats->sample_attempts = sample_attempts.load(std::memory_order_relaxed);
    stats->decode_attempts = decode_attempts.load(std::memory_order_relaxed);
  }
  return result;
}

Status SpanningForestSketch::MergeFrom(const SpanningForestSketch& other) {
  if (seed_ != other.seed_ || n_ != other.n_ ||
      codec_.max_rank() != other.codec_.max_rank() ||
      rounds_ != other.rounds_ || state_words_ != other.state_words_ ||
      params_.config.sparse_threshold !=
          other.params_.config.sparse_threshold) {
    return Status::InvalidArgument(
        "SpanningForestSketch::MergeFrom: seed/shape mismatch (different "
        "measurement)");
  }
  // The other's active set must be a subset of ours: equal sets are the
  // sharded-merge case; a strict subset is the referee folding a player's
  // single-vertex state into the full sketch.
  for (VertexId v = 0; v < n_; ++v) {
    if (other.IsActive(v) && !IsActive(v)) {
      return Status::InvalidArgument(
          "SpanningForestSketch::MergeFrom: other sketch is active at a "
          "vertex this sketch is not");
    }
  }
  // Hybrid phase lattice (DESIGN.md Section 12). Counters add saturating at
  // threshold + 1 -- min(a + b, T + 1) is associative and commutative, so
  // any shard split escalates a vertex at exactly the same total count as
  // the serial stream. Buffers merge by sorted concat-and-cancel; a
  // combined count past the threshold escalates by exact replay, after
  // which the arena walk below adds the other's dense cells. The other's
  // still-sparse columns are all-zero in its arena, so the walk (which may
  // visit them when the other came from Deserialize and is all-dirty)
  // contributes exactly the dense part.
  if (Hybrid()) {
    const uint32_t threshold = params_.config.sparse_threshold;
    for (VertexId v = 0; v < n_; ++v) {
      if (!other.IsActive(v)) continue;
      const size_t oo = static_cast<size_t>(other.state_index_[v]);
      const uint32_t oc = other.counters_[oo];
      if (oc == 0) continue;  // the other never touched this vertex
      const size_t mo = static_cast<size_t>(state_index_[v]);
      if (Escalated(mo)) {
        if (!other.Escalated(oo)) {
          // dense x sparse: replay the other's exact buffer into my arena.
          for (const SparseEntry& entry : other.buffers_[oo]) {
            ApplyLocalOrd(mo, PrepareCoord(entry.index), entry.value,
                          /*concurrent=*/false);
          }
        }
        continue;  // my counter is already saturated at threshold + 1
      }
      if (other.Escalated(oo)) {
        // sparse x dense: escalate myself (replays my buffer); the arena
        // walk then adds the other's cells on top.
        counters_[mo] = threshold + 1;
        EscalateOrdinal(mo, /*concurrent=*/false);
        continue;
      }
      // sparse x sparse: exact signed union with cancellation. Both
      // counters are <= threshold, so the sum cannot wrap.
      const uint32_t combined = counters_[mo] + oc;
      for (const SparseEntry& entry : other.buffers_[oo]) {
        SparseBufferAdd(&buffers_[mo], entry.index, entry.value);
      }
      if (combined > threshold) {
        counters_[mo] = threshold + 1;
        EscalateOrdinal(mo, /*concurrent=*/false);
      } else {
        counters_[mo] = combined;
      }
    }
  }
  // Sparse merge: only the columns the other sketch's dirty bitmap marks
  // can be nonzero, and adding an all-zero column is the field identity --
  // so the result is bit-identical to the old dense sweep while a clone
  // that ingested a short stream slice merges in time proportional to what
  // it actually touched.
  if (state_index_ == other.state_index_) {
    // Same active set: ordinals coincide, so walk raw bitmap words.
    for (int t = 0; t < rounds_; ++t) {
      const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
      const size_t base =
          static_cast<size_t>(t) * dirty_words_per_round_;
      for (size_t w = 0; w < dirty_words_per_round_; ++w) {
        uint64_t bits = other.dirty_[base + w];
        if (bits == 0) continue;
        dirty_[base + w] |= bits;
        while (bits != 0) {
          const size_t ord =
              (w << 6) + static_cast<size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const size_t col =
              ord * static_cast<size_t>(rounds_) + static_cast<size_t>(t);
          const uint64_t src_mask = other.level_mask_[col];
          level_mask_[col] |= src_mask;
          L0AddRawMasked(shape, arena_.data() + col * state_words_,
                         other.arena_.data() + col * state_words_, src_mask);
        }
      }
    }
  } else {
    // Strict-subset active set (the referee case): map ordinals through
    // vertex ids; both sketches store the dense ordinal in state_index_.
    for (VertexId v = 0; v < n_; ++v) {
      if (!other.IsActive(v)) continue;
      const size_t oo = static_cast<size_t>(other.state_index_[v]);
      const size_t mo = static_cast<size_t>(state_index_[v]);
      for (int t = 0; t < rounds_; ++t) {
        if (!other.IsDirty(t, oo)) continue;
        MarkDirty(t, v);
        const size_t ocol =
            oo * static_cast<size_t>(rounds_) + static_cast<size_t>(t);
        const size_t mcol =
            mo * static_cast<size_t>(rounds_) + static_cast<size_t>(t);
        const uint64_t src_mask = other.level_mask_[ocol];
        level_mask_[mcol] |= src_mask;
        L0AddRawMasked(*round_shapes_[static_cast<size_t>(t)],
                       arena_.data() + mcol * state_words_,
                       other.arena_.data() + ocol * state_words_, src_mask);
      }
    }
  }
  return Status::OK();
}

void SpanningForestSketch::Clear() {
  arena_.Fill0();
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(level_mask_.begin(), level_mask_.end(), 0);
  if (Hybrid()) {
    std::fill(counters_.begin(), counters_.end(), 0u);
    for (auto& buf : buffers_) {
      buf.clear();
      buf.shrink_to_fit();
    }
    sparse_remaining_ = num_active_;
  }
}

void SpanningForestSketch::MarkAllDirty() {
  std::fill(level_mask_.begin(), level_mask_.end(), ~uint64_t{0});
  if (dirty_.empty()) return;
  std::fill(dirty_.begin(), dirty_.end(), ~uint64_t{0});
  // Mask each round's pad bits so bitmap scans never yield an ordinal
  // beyond the active count.
  const size_t tail = num_active_ & 63;
  if (tail != 0) {
    const uint64_t mask = (uint64_t{1} << tail) - 1;
    for (int t = 0; t < rounds_; ++t) {
      dirty_[static_cast<size_t>(t + 1) * dirty_words_per_round_ - 1] = mask;
    }
  }
}

void SpanningForestSketch::AppendCells(wire::Writer* w) const {
  if (params_.config.sparse_threshold == 0) {
    // Dense-from-the-start: a v1-style raw arena dump behind the repr byte.
    w->U8(0);
    w->Words(arena_.data(), arena_.size());
    return;
  }
  // Hybrid section: counters travel so the phase survives a round trip
  // (escalated <=> counter > threshold), escalated columns dump raw words,
  // sparse columns dump their exact signed buffers. The escalated-column
  // and total-entry counts up front pin the section size to a closed
  // formula a skimmer can check without walking the counters.
  w->U8(1);
  uint64_t escalated = 0, entries = 0;
  for (size_t ord = 0; ord < num_active_; ++ord) {
    if (Escalated(ord)) {
      ++escalated;
    } else {
      entries += buffers_[ord].size();
    }
  }
  w->U64(escalated);
  w->U64(entries);
  for (size_t ord = 0; ord < num_active_; ++ord) w->U32(counters_[ord]);
  const size_t col_words =
      static_cast<size_t>(rounds_) * state_words_;
  for (size_t ord = 0; ord < num_active_; ++ord) {
    if (Escalated(ord)) {
      w->Words(ColAt(ord, 0), col_words);
    } else {
      w->U32(static_cast<uint32_t>(buffers_[ord].size()));
      for (const SparseEntry& entry : buffers_[ord]) {
        w->U128(entry.index);
        w->U64(static_cast<uint64_t>(entry.value));
      }
    }
  }
}

Status SpanningForestSketch::ReadCells(wire::Reader* r) {
  uint8_t repr = 0;
  GMS_RETURN_IF_ERROR(r->U8(&repr));
  const uint32_t threshold = params_.config.sparse_threshold;
  if (repr == 0) {
    if (threshold != 0) {
      return Status::InvalidArgument(
          "wire: dense forest cells under a sparse-threshold config");
    }
    if (r->remaining() < arena_.size() * sizeof(uint64_t)) {
      return Status::InvalidArgument("wire: forest payload size mismatch");
    }
    GMS_RETURN_IF_ERROR(r->Words(arena_.data(), arena_.size()));
    // Frames carry no bitmap; correctness only needs dirty ⊇ nonzero, so
    // mark everything.
    MarkAllDirty();
    return Status::OK();
  }
  if (repr != 1) {
    return Status::InvalidArgument("wire: unknown forest cell repr");
  }
  if (threshold == 0) {
    return Status::InvalidArgument(
        "wire: hybrid forest cells under a dense config");
  }
  uint64_t escalated = 0, entries = 0;
  GMS_RETURN_IF_ERROR(r->U64(&escalated));
  GMS_RETURN_IF_ERROR(r->U64(&entries));
  uint64_t seen_escalated = 0, seen_entries = 0;
  for (size_t ord = 0; ord < num_active_; ++ord) {
    uint32_t counter = 0;
    GMS_RETURN_IF_ERROR(r->U32(&counter));
    if (counter > threshold + 1) {
      return Status::InvalidArgument(
          "wire: forest sparse counter above saturation");
    }
    counters_[ord] = counter;
  }
  const size_t col_words = static_cast<size_t>(rounds_) * state_words_;
  const u128 domain = codec_.DomainSize();
  for (size_t ord = 0; ord < num_active_; ++ord) {
    if (counters_[ord] > threshold) {
      ++seen_escalated;
      GMS_RETURN_IF_ERROR(r->Words(ColAt(ord, 0), col_words));
      continue;
    }
    uint32_t count = 0;
    GMS_RETURN_IF_ERROR(r->U32(&count));
    if (count > counters_[ord]) {
      return Status::InvalidArgument(
          "wire: forest buffer larger than its update counter");
    }
    // Entry bytes are bounded by what the frame actually carries BEFORE the
    // reserve, so a hostile count cannot command an unbacked allocation.
    if (static_cast<uint64_t>(count) * 24 > r->remaining()) {
      return Status::InvalidArgument("wire: truncated forest sparse buffer");
    }
    seen_entries += count;
    auto& buf = buffers_[ord];
    buf.clear();
    buf.reserve(count);
    u128 prev_key = 0;
    for (uint32_t i = 0; i < count; ++i) {
      u128 key = 0;
      uint64_t value_bits = 0;
      GMS_RETURN_IF_ERROR(r->U128(&key));
      GMS_RETURN_IF_ERROR(r->U64(&value_bits));
      // Canonical form: strictly ascending keys inside the codec domain,
      // no explicit zeros. Anything else cannot have come from Serialize.
      if (i > 0 && key <= prev_key) {
        return Status::InvalidArgument(
            "wire: forest sparse buffer keys out of order");
      }
      if (key >= domain) {
        return Status::InvalidArgument(
            "wire: forest sparse key outside the codec domain");
      }
      if (value_bits == 0) {
        return Status::InvalidArgument(
            "wire: forest sparse entry with zero weight");
      }
      prev_key = key;
      buf.push_back(SparseEntry{key, static_cast<int64_t>(value_bits)});
    }
  }
  if (seen_escalated != escalated || seen_entries != entries) {
    return Status::InvalidArgument(
        "wire: forest hybrid section totals disagree with its columns");
  }
  sparse_remaining_ = num_active_ - static_cast<size_t>(seen_escalated);
  MarkAllDirty();
  return Status::OK();
}

Result<size_t> SkimForestCellSection(std::span<const uint8_t> bytes,
                                     uint64_t num_active, uint64_t rounds,
                                     uint64_t state_words,
                                     uint32_t threshold) {
  wire::Reader r(bytes);
  uint8_t repr = 0;
  GMS_RETURN_IF_ERROR(r.U8(&repr));
  // Column words as u128: every operand below is <= 2^32 after the config
  // range checks, so products of three of them cannot wrap 128 bits.
  if (num_active > (uint64_t{1} << 32) || rounds > (uint64_t{1} << 32) ||
      state_words > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("wire: forest shape out of range");
  }
  const u128 col_words = u128{rounds} * state_words;
  if (repr == 0) {
    if (threshold != 0) {
      return Status::InvalidArgument(
          "wire: dense forest cells under a sparse-threshold config");
    }
    const u128 body = u128{8} * num_active * col_words;
    if (body > r.remaining()) {
      return Status::InvalidArgument("wire: forest payload size mismatch");
    }
    GMS_RETURN_IF_ERROR(r.Skip(static_cast<size_t>(body)));
    return static_cast<size_t>(1 + body);
  }
  if (repr != 1) {
    return Status::InvalidArgument("wire: unknown forest cell repr");
  }
  if (threshold == 0) {
    return Status::InvalidArgument(
        "wire: hybrid forest cells under a dense config");
  }
  // A hybrid frame's size is decoupled from the arena it commands (a few
  // escalated columns can ride a huge (num_active, rounds) shape), so the
  // PR 3 "payload bounds the allocation" rule needs explicit caps here:
  // level_mask_ and dirty_ are REAL vectors of ~num_active * rounds words,
  // and the arena is num_active * rounds * state_words words of lazily
  // mapped virtual space. Anything larger is rejected before construction;
  // Deserialize additionally catches bad_alloc for shapes under the caps.
  if (u128{num_active} * rounds > (u128{1} << 31) ||
      u128{8} * num_active * col_words > (u128{1} << 42)) {
    return Status::InvalidArgument(
        "wire: hybrid forest shape too large for a committed allocation");
  }
  uint64_t escalated = 0, entries = 0;
  GMS_RETURN_IF_ERROR(r.U64(&escalated));
  GMS_RETURN_IF_ERROR(r.U64(&entries));
  if (escalated > num_active) {
    return Status::InvalidArgument(
        "wire: forest escalated count above the active count");
  }
  const uint64_t sparse_cols = num_active - escalated;
  if (u128{entries} > u128{sparse_cols} * threshold) {
    return Status::InvalidArgument(
        "wire: forest sparse entries above capacity");
  }
  // Closed section size: repr + totals + u32 counters + u32 per sparse
  // column + 24-byte entries + raw escalated columns.
  const u128 body = u128{4} * num_active + u128{4} * sparse_cols +
                    u128{24} * entries + u128{8} * escalated * col_words;
  if (body > r.remaining()) {
    return Status::InvalidArgument("wire: truncated forest hybrid section");
  }
  GMS_RETURN_IF_ERROR(r.Skip(static_cast<size_t>(body)));
  return static_cast<size_t>(17 + body);
}

void SpanningForestSketch::Serialize(std::vector<uint8_t>* out) const {
  wire::FrameBuilder fb(wire::FrameType::kSpanningForest, out);
  fb.writer().U64(n_);
  fb.writer().U64(codec_.max_rank());
  fb.writer().U64(seed_);
  // rounds_ is already resolved (never 0), so the reconstruction is exact
  // even when this sketch was built with the rounds=0 default.
  Params resolved = params_;
  resolved.rounds = rounds_;
  WriteForestParams(resolved, &fb.writer());
  std::vector<bool> active(n_);
  for (VertexId v = 0; v < n_; ++v) active[v] = IsActive(v);
  fb.writer().BoolVec(active);
  fb.EndHeader();
  AppendCells(&fb.writer());
  fb.Finish();
}

Result<SpanningForestSketch> SpanningForestSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  auto frame = wire::ParseFrame(bytes, wire::FrameType::kSpanningForest);
  if (!frame.ok()) return frame.status();
  wire::Reader header(frame->header);
  uint64_t n = 0, max_rank = 0, seed = 0;
  Params params;
  std::vector<bool> active;
  GMS_RETURN_IF_ERROR(header.U64(&n));
  GMS_RETURN_IF_ERROR(header.U64(&max_rank));
  GMS_RETURN_IF_ERROR(header.U64(&seed));
  GMS_RETURN_IF_ERROR(ReadForestParams(&header, &params));
  GMS_RETURN_IF_ERROR(header.BoolVec(&active, /*max_size=*/size_t{1} << 32));
  GMS_RETURN_IF_ERROR(header.ExpectEnd());
  if (n < 1 || n > (uint64_t{1} << 32) || max_rank < 2 || max_rank > n ||
      params.rounds < 1 || active.size() != n) {
    return Status::InvalidArgument("wire: forest shape out of range");
  }
  // Shape-implied payload size BEFORE construction: the arena allocation is
  // then bounded by the bytes the caller actually supplied, so a short
  // hostile frame with huge header fields is rejected up front.
  auto words = ForestStateWords(static_cast<size_t>(n),
                                static_cast<size_t>(max_rank), params.config);
  if (!words.ok()) return words.status();
  uint64_t num_active = 0;
  for (bool a : active) num_active += a ? 1 : 0;
  // The section must account for the payload exactly -- and, for hybrid
  // repr, pass the allocation caps -- BEFORE the sketch (and its arena) is
  // constructed.
  auto skim = SkimForestCellSection(frame->payload, num_active,
                                    static_cast<uint64_t>(params.rounds),
                                    *words, params.config.sparse_threshold);
  if (!skim.ok()) return skim.status();
  if (*skim != frame->payload.size()) {
    return Status::InvalidArgument(
        "wire: forest payload size disagrees with the header shape");
  }
  try {
    SpanningForestSketch sketch(static_cast<size_t>(n),
                                static_cast<size_t>(max_rank), seed, params,
                                &active);
    wire::Reader payload(frame->payload);
    GMS_RETURN_IF_ERROR(sketch.ReadCells(&payload));
    GMS_RETURN_IF_ERROR(payload.ExpectEnd());
    return sketch;
  } catch (const std::bad_alloc&) {
    // Hybrid shapes under the skim caps can still exceed what this machine
    // will commit (level_mask_/dirty_ are eager vectors); surface that as a
    // frame error rather than an abort.
    return Status::InvalidArgument(
        "wire: forest shape too large for available memory");
  }
}

size_t SpanningForestSketch::SpaceBytes() const {
  std::vector<uint8_t> frame;
  Serialize(&frame);
  return frame.size();
}

size_t SpanningForestSketch::MemoryBytes() const {
  return arena_.size() * sizeof(uint64_t);
}

size_t SpanningForestSketch::CellsPerVertex() const {
  size_t total = 0;
  for (const auto& shape : round_shapes_) total += shape->TotalCells();
  return total;
}

}  // namespace gms
