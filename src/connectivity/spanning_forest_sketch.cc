#include "connectivity/spanning_forest_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "connectivity/incidence.h"
#include "graph/union_find.h"
#include "util/check.h"
#include "util/random.h"

namespace gms {

namespace {

int DefaultRounds(size_t n, const SketchConfig& config) {
  int log_n = 1;
  while ((size_t{1} << log_n) < n) ++log_n;
  return log_n + config.extra_boruvka_rounds;
}

}  // namespace

SpanningForestSketch::SpanningForestSketch(size_t n, size_t max_rank,
                                           uint64_t seed, const Params& params,
                                           const std::vector<bool>* active)
    : n_(n),
      rounds_(params.rounds > 0 ? params.rounds
                                : DefaultRounds(n, params.config)),
      codec_(n, max_rank),
      states_(n) {
  GMS_CHECK(active == nullptr || active->size() == n);
  Rng rng(seed);
  round_shapes_.reserve(static_cast<size_t>(rounds_));
  for (int t = 0; t < rounds_; ++t) {
    round_shapes_.push_back(std::make_shared<const L0Shape>(
        codec_.DomainSize(), params.config, rng.Fork()));
  }
  for (VertexId v = 0; v < n; ++v) {
    if (active != nullptr && !(*active)[v]) continue;
    states_[v].reserve(static_cast<size_t>(rounds_));
    for (int t = 0; t < rounds_; ++t) {
      states_[v].emplace_back(round_shapes_[static_cast<size_t>(t)].get());
    }
  }
}

void SpanningForestSketch::Update(const Hyperedge& e, int delta) {
  GMS_CHECK_MSG(e.size() <= codec_.max_rank(), "hyperedge exceeds max_rank");
  u128 index = codec_.Encode(e);
  for (int t = 0; t < rounds_; ++t) {
    const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
    int level = shape.LevelOf(index);
    uint64_t power = shape.level_shape(level).FingerprintPower(index);
    for (VertexId v : e) {
      GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
      int64_t coeff = IncidenceCoefficient(e, v) * delta;
      states_[v][static_cast<size_t>(t)].UpdateWithPower(index, coeff, level,
                                                         power);
    }
  }
}

void SpanningForestSketch::UpdateLocal(VertexId v, const Hyperedge& e,
                                       int delta) {
  GMS_CHECK_MSG(e.Contains(v), "UpdateLocal: vertex not in hyperedge");
  GMS_CHECK_MSG(IsActive(v), "update touches an inactive vertex");
  u128 index = codec_.Encode(e);
  int64_t coeff = IncidenceCoefficient(e, v) * delta;
  for (int t = 0; t < rounds_; ++t) {
    const L0Shape& shape = *round_shapes_[static_cast<size_t>(t)];
    int level = shape.LevelOf(index);
    uint64_t power = shape.level_shape(level).FingerprintPower(index);
    states_[v][static_cast<size_t>(t)].UpdateWithPower(index, coeff, level,
                                                       power);
  }
}

void SpanningForestSketch::Process(const DynamicStream& stream) {
  for (const auto& u : stream) Update(u.edge, u.delta);
}

void SpanningForestSketch::RemoveHyperedges(
    const std::vector<Hyperedge>& edges) {
  for (const auto& e : edges) Update(e, -1);
}

Result<Hypergraph> SpanningForestSketch::ExtractSpanningGraph() const {
  Hypergraph result(n_);
  UnionFind uf(n_);
  std::vector<VertexId> active_vertices;
  for (VertexId v = 0; v < n_; ++v) {
    if (IsActive(v)) active_vertices.push_back(v);
  }
  if (active_vertices.size() <= 1) return result;

  for (int t = 0; t < rounds_; ++t) {
    // Group active vertices by current component.
    std::vector<std::vector<VertexId>> groups;
    {
      std::vector<int64_t> dense(n_, -1);
      for (VertexId v : active_vertices) {
        VertexId r = uf.Find(v);
        if (dense[r] < 0) {
          dense[r] = static_cast<int64_t>(groups.size());
          groups.emplace_back();
        }
        groups[static_cast<size_t>(dense[r])].push_back(v);
      }
    }
    if (groups.size() <= 1) break;

    // Sample one crossing hyperedge per component from the summed sketch.
    std::vector<Hyperedge> found;
    for (const auto& group : groups) {
      L0State acc(round_shapes_[static_cast<size_t>(t)].get());
      for (VertexId v : group) {
        acc.Add(states_[v][static_cast<size_t>(t)]);
      }
      auto sample = acc.Sample();
      if (!sample.ok()) continue;  // isolated component or sampler failure
      auto decoded = codec_.Decode(sample->index);
      if (!decoded.ok()) continue;  // corrupted sample; skip defensively
      const Hyperedge& e = *decoded;
      // Sanity: a genuine sample crosses the component boundary and touches
      // only active vertices.
      bool valid = std::llabs(sample->value) <
                       static_cast<int64_t>(codec_.max_rank()) &&
                   sample->value != 0;
      bool any_in = false, any_out = false;
      for (VertexId v : e) {
        if (!IsActive(v)) valid = false;
        (uf.Connected(v, group[0]) ? any_in : any_out) = true;
      }
      if (!valid || !any_in || !any_out) continue;
      found.push_back(e);
    }
    for (const auto& e : found) {
      bool merged = false;
      for (size_t i = 1; i < e.size(); ++i) merged |= uf.Union(e[0], e[i]);
      if (merged) result.AddEdge(e);
    }
  }
  return result;
}

size_t SpanningForestSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& per_round : states_) {
    for (const auto& state : per_round) total += state.MemoryBytes();
  }
  return total;
}

size_t SpanningForestSketch::CellsPerVertex() const {
  size_t total = 0;
  for (const auto& shape : round_shapes_) total += shape->TotalCells();
  return total;
}

}  // namespace gms
