// The AGM spanning-graph sketch (Theorem 2 for graphs, Theorem 13 for
// hypergraphs): every vertex keeps one L0-sampler of its incidence vector
// per Borůvka round; summing the samplers of a component yields a sampler
// of the component's cut vector (by linearity and the Section 4.1
// encoding), so each round contracts every component along a sampled
// crossing hyperedge. O(log n) rounds connect everything whp.
//
// The sketch is vertex-based in the paper's sense: each vertex's state is a
// linear function of the hyperedges incident to that vertex only, which is
// what the simultaneous-communication protocol in comm/ relies on.
#ifndef GMS_CONNECTIVITY_SPANNING_FOREST_SKETCH_H_
#define GMS_CONNECTIVITY_SPANNING_FOREST_SKETCH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/edge_codec.h"
#include "graph/hypergraph.h"
#include "sketch/l0_sampler.h"
#include "sketch/sketch_config.h"
#include "stream/gutters.h"
#include "stream/stream.h"
#include "util/parallel.h"
#include "util/status.h"
#include "util/zeroed_buffer.h"

namespace gms {

class UnionFind;

/// Instrumentation from one spanning-graph extraction (or, accumulated, a
/// whole Finalize over R forests). Every counter is a deterministic
/// function of the sketch state -- independent of thread count -- except
/// summed_words, which measures the work the chosen extraction PATH did
/// (the incremental path's whole point is that it is much smaller).
struct ExtractStats {
  /// Borůvka rounds actually executed (<= the sketch's round budget).
  int rounds_run = 0;
  /// True if the loop stopped because no component merged AND every
  /// remaining component's sketch was identically zero (no later round
  /// can help: the zero measurement is zero in every round's column).
  bool early_exit = false;
  /// Words field-added or copied into component accumulators.
  uint64_t summed_words = 0;
  /// Component sample calls (one per multi-candidate group per round).
  uint64_t sample_attempts = 0;
  /// s-sparse decode attempts inside those sample calls.
  uint64_t decode_attempts = 0;
  /// Crossing hyperedges accepted into the spanning graph.
  uint64_t edges_found = 0;
  /// Forests answered by the sparse-exact fast path (ExtractSparseExact):
  /// every column still in the hybrid sparse phase, so the exact pre-round
  /// IS the whole extraction and the Borůvka rounds were skipped entirely.
  uint64_t sparse_exact_forests = 0;
  /// Component-group count per executed round.
  std::vector<uint64_t> groups_per_round;
};

/// Element-wise accumulation (containers extracting R forests sum their
/// per-forest stats in sketch order; integer sums, so deterministic).
void AccumulateExtractStats(const ExtractStats& in, ExtractStats* out);

/// The unified non-destructive query surface (DESIGN.md Section 13): every
/// sketch type answers `Query()` on a CONST sketch with one of these --
/// Status, the typed payload, and the extraction-engine counters, all
/// returned by value. Nothing in the sketch mutates, so queries can run
/// against a frozen snapshot while another copy keeps ingesting (the
/// serving layer in src/serve/ is built on exactly this property).
/// Replaces the Finalize(ExtractStats*)-then-poke-accessors protocol; the
/// old Finalize wrappers remain for one release, marked [[deprecated]].
template <typename T>
class QueryResult {
 public:
  /// The payload type, for generic wrappers (the serving engine deduces
  /// its snapshot payload from `decltype(sketch.Query())::value_type`).
  using value_type = T;

  /// An error result (extraction failed); CHECK-fails on an OK status.
  explicit QueryResult(Status status) : status_(std::move(status)) {
    GMS_CHECK_MSG(!status_.ok(), "QueryResult: OK status requires a payload");
  }
  QueryResult(T value, ExtractStats stats = ExtractStats())
      : value_(std::move(value)), stats_(std::move(stats)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const ExtractStats& stats() const { return stats_; }

  const T& value() const& {
    GMS_CHECK_MSG(ok(), "QueryResult::value() on an error result");
    return *value_;
  }
  T&& value() && {
    GMS_CHECK_MSG(ok(), "QueryResult::value() on an error result");
    return *std::move(value_);
  }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
  ExtractStats stats_;
};

struct ForestSketchParams {
  SketchConfig config = SketchConfig::Default();
  /// Borůvka rounds; 0 means ceil(log2 n) + config.extra_boruvka_rounds.
  int rounds = 0;
  /// Worker threads + ingestion mode for batched Process and for the
  /// per-round component summation in ExtractSpanningGraph (see
  /// util/parallel.h; outputs are bit-identical for every setting).
  EngineParams engine;

  class Builder;
};

/// Fluent construction: ForestSketchParams::Builder().Rounds(12)
///     .Engine(EngineParams::Builder().Threads(8).Build()).Build().
/// Build() validates the sketch-shape knobs here and funnels the engine
/// knobs through ValidateEngineParams (the single validator every params
/// builder shares).
class ForestSketchParams::Builder {
 public:
  Builder() = default;
  /// Copy-with: seed the builder from existing params, override a few
  /// knobs, Build(). (Re-)validates everything, including untouched fields.
  explicit Builder(const ForestSketchParams& from) : p_(from) {}

  Builder& Config(const SketchConfig& config) {
    p_.config = config;
    return *this;
  }
  Builder& Rounds(int rounds) {
    p_.rounds = rounds;
    return *this;
  }
  Builder& Engine(const EngineParams& engine) {
    p_.engine = engine;
    return *this;
  }
  /// Shortcuts into the embedded engine (the two knobs every thread-sweep
  /// test and bench overrides).
  Builder& Threads(size_t threads) {
    p_.engine.threads = threads;
    return *this;
  }
  Builder& Mode(IngestMode mode) {
    p_.engine.mode = mode;
    return *this;
  }
  ForestSketchParams Build() const {
    GMS_CHECK_MSG(p_.rounds >= 0,
                  "ForestSketchParams: rounds must be >= 0 (0 = auto)");
    GMS_CHECK_MSG(p_.config.sparse_capacity >= 1,
                  "ForestSketchParams: sparse_capacity must be >= 1");
    GMS_CHECK_MSG(p_.config.rows >= 2,
                  "ForestSketchParams: s-sparse recovery needs >= 2 rows");
    GMS_CHECK_MSG(p_.config.buckets_per_capacity >= 1,
                  "ForestSketchParams: buckets_per_capacity must be >= 1");
    GMS_CHECK_MSG(p_.config.extra_boruvka_rounds >= 0,
                  "ForestSketchParams: extra_boruvka_rounds must be >= 0");
    ValidateEngineParams(p_.engine);
    return p_;
  }

 private:
  ForestSketchParams p_;
};

/// Wire helpers: forest params are part of every forest-based frame header.
/// Engine knobs (threads/mode) are LOCAL execution policy, not measurement
/// shape, so they do not travel; deserialized sketches come back serial.
void WriteForestParams(const ForestSketchParams& params, wire::Writer* w);
Status ReadForestParams(wire::Reader* r, ForestSketchParams* params);

/// Exact cell words per (active vertex, round) of a forest-based sketch
/// over (n, max_rank, config), computed without constructing anything:
/// EdgeCodec::DomainSizeFor -> L0StateWords. Deserializers multiply this
/// into a shape-implied payload size and reject mismatched frames BEFORE
/// allocating, so a tiny hostile frame cannot command a huge allocation.
/// InvalidArgument for (n, max_rank) whose domain exceeds 126 bits.
Result<uint64_t> ForestStateWords(size_t n, size_t max_rank,
                                  const SketchConfig& config);

/// Size-validate ONE serialized forest cell section (the unit AppendCells
/// writes) at the head of `bytes` WITHOUT allocating anything, and return
/// its exact byte length. A v2 cell section is self-sizing: a repr byte
/// (0 = raw arena words, only legal when sparse_threshold == 0; 1 = hybrid)
/// and, for hybrid, escalated-column and buffered-entry totals that pin the
/// section size to a closed formula. Containers skim each sub-sketch's
/// section in turn and require the sum to equal the payload BEFORE
/// constructing, preserving the PR 3 rule that a tiny hostile frame cannot
/// command a huge committed allocation.
Result<size_t> SkimForestCellSection(std::span<const uint8_t> bytes,
                                     uint64_t num_active, uint64_t rounds,
                                     uint64_t state_words, uint32_t threshold);

class SpanningForestSketch {
 public:
  using Params = ForestSketchParams;

  /// Sketch for hypergraphs on n vertices with hyperedge cardinality up to
  /// max_rank (use 2 for graphs: the domain, and hence the number of
  /// subsampling levels, shrinks accordingly). If `active` is non-null,
  /// state is allocated only for vertices with active[v] = true and the
  /// decoded graph treats inactive vertices as absent (used by the
  /// vertex-subsampling construction of Section 3).
  SpanningForestSketch(size_t n, size_t max_rank, uint64_t seed,
                       const Params& params = Params(),
                       const std::vector<bool>* active = nullptr);

  size_t n() const { return n_; }
  size_t max_rank() const { return codec_.max_rank(); }
  int rounds() const { return rounds_; }
  uint64_t seed() const { return seed_; }
  bool IsActive(VertexId v) const { return state_index_[v] >= 0; }

  /// Hybrid sparse/dense phase observers. Threshold 0 disables the sparse
  /// phase (every vertex is dense from the first update, the pre-hybrid
  /// behaviour); otherwise a vertex buffers its first `sparse_threshold`
  /// updates exactly and escalates on the next one.
  uint32_t sparse_threshold() const { return params_.config.sparse_threshold; }
  bool VertexEscalated(VertexId v) const {
    GMS_CHECK_MSG(IsActive(v), "phase query on an inactive vertex");
    return Escalated(static_cast<size_t>(state_index_[v]));
  }

  /// Linear update: insert (delta=+1) or delete (delta=-1) hyperedge e.
  /// CHECK-fails if any endpoint is inactive (callers filter first).
  void Update(const Hyperedge& e, int delta);

  /// As Update, with codec().Encode(e) precomputed by the caller. Containers
  /// holding many sketches over the same (n, max_rank) domain encode each
  /// stream update once and fan it out to every sketch with this.
  void UpdateEncoded(const Hyperedge& e, u128 index, int delta);

  /// As UpdateEncoded with the coordinate fully prepared (folded + exponent
  /// reduced). The preparation is shape-independent, so containers fanning
  /// one update out to many sketches prepare once for all of them.
  void UpdatePrepared(const Hyperedge& e, const PreparedCoord& pc, int delta);

  /// Batched ingestion. Column mode encodes each update once, then shards
  /// the Borůvka rounds (independent sketch columns) across the workers;
  /// sharded-merge mode slices the stream into private clones and
  /// tree-merges (see util/parallel.h). Bit-identical to updating serially
  /// in order either way.
  void Process(std::span<const StreamUpdate> updates);

  /// Prefetch the cells UpdatePrepared(e, pc, .) will touch. Batch ingest
  /// paths call this a few updates ahead: the arena is far larger than
  /// cache and updates land at random vertices, so without lookahead each
  /// update stalls on compulsory misses the out-of-order window cannot
  /// reach. Purely a hint; no state changes.
  void PrefetchPrepared(const Hyperedge& e, const PreparedCoord& pc) const {
    for (int t = 0; t < rounds_; ++t) PrefetchRound(t, e, pc);
  }

  /// Ingest a whole stream.
  void Process(const DynamicStream& stream);

  /// Update ONLY vertex v's measurement for hyperedge e (v must be in e).
  /// This is the per-player operation of the simultaneous-communication
  /// model: player v's message depends on v's incident edges alone.
  /// Applying UpdateLocal for every endpoint of e equals Update(e, delta).
  void UpdateLocal(VertexId v, const Hyperedge& e, int delta);

  /// Gutter-driver batch apply (stream/stream_driver.h): replay a gutter
  /// of prepared per-endpoint updates, all targeting vertex v, over v's
  /// contiguous [rounds x level segments] block. Equals calling
  /// UpdateLocal once per entry (the entries carry the prepared coordinate
  /// and the incidence coefficient x delta), and hence -- summed over all
  /// endpoints' batches -- equals the serial Update path bit for bit.
  /// Safe to call concurrently for vertices owned by DIFFERENT appliers:
  /// the arena columns and level-mask words of distinct vertices are
  /// disjoint, and the shared round-major dirty words are marked with a
  /// relaxed atomic OR. `thr_id` is the applier's worker index (unused
  /// here; part of the driver's sketch concept).
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch);

  /// Gutter-driver routing (stream/stream_driver.h): a plain forest sketch
  /// has a single sub-sketch family, so every update routes (mask 1).
  /// Endpoint-activity enforcement stays in ApplyUpdateBatch, matching the
  /// serial path's CHECK.
  uint64_t DriverRouteMask(const Hyperedge&) const { return 1; }

  /// Subtract a known subgraph (linearity; used by k-skeleton layering).
  void RemoveHyperedges(const std::vector<Hyperedge>& edges);

  /// Decode a spanning graph of the sketched hypergraph, restricted to
  /// active vertices. The result has the same connected components as the
  /// input whp; per-round sampling failures are tolerated (extra rounds
  /// absorb them) and surface only as a disconnected-looking result.
  ///
  /// Incremental decode: by linearity a component's sketch is the SUM of
  /// its members' sketches, and that sum evolves only when UnionFind unites
  /// components -- so instead of re-summing every member from scratch each
  /// round, per-component accumulators persist across rounds and are
  /// field-MERGED when components unite. Round 0 components are singletons
  /// and sample directly from the arena (no accumulator at all);
  /// accumulators cover fixed windows of kAccWindowRounds future rounds so
  /// merges are whole-block additions. Per-component work fans out across
  /// `threads` workers (0 = the engine.threads this sketch was built
  /// with); all arithmetic is exact field addition and every serial
  /// decision (block ids, union order) runs in group order, so the decode
  /// is bit-identical for every thread count. The loop exits early once no
  /// component merged and every remaining component's sketch is zero.
  Result<Hypergraph> ExtractSpanningGraph(size_t threads = 0,
                                          ExtractStats* stats = nullptr) const;

  /// True iff every active vertex is still in the hybrid sparse-exact
  /// phase (no column escalated). The arena is then identically zero and
  /// the buffers carry the WHOLE measurement exactly -- which makes the
  /// sparse-exact extraction below valid.
  bool AllSparse() const {
    return Hybrid() && sparse_remaining_ == num_active_;
  }

  /// Exact extraction for an all-sparse sketch: run ONLY the hybrid exact
  /// pre-round (buffers fed to Borůvka verbatim) and skip every sampling
  /// round. Bit-identical to ExtractSpanningGraph, because on an
  /// all-sparse sketch the pre-round already decides everything: a
  /// net-nonzero hyperedge is buffered at EVERY endpoint (per-endpoint
  /// cancellation is coefficient-consistent), so the pre-round's
  /// components are the true connected components, no crossing hyperedge
  /// survives it, and each component's summed round sketch is identically
  /// zero (incidence coefficients cancel within a component) -- the
  /// skipped rounds could not have added an edge. CHECK-fails unless
  /// AllSparse(); stats report the skip via sparse_exact_forests = 1 with
  /// zero rounds_run / sample_attempts. Containers decoding R subsample
  /// forests take this path per all-sparse forest (the common case under
  /// aggressive subsampling), skipping whole extraction loops.
  Result<Hypergraph> ExtractSparseExact(ExtractStats* stats = nullptr) const;

  /// The unified non-destructive query: the decoded spanning graph plus the
  /// extraction counters in one value (a thin wrapper over
  /// ExtractSpanningGraph; same determinism and thread-count guarantees).
  QueryResult<Hypergraph> Query(size_t threads = 0) const;

  /// Serving hook (src/serve/): has any measurement state changed since
  /// construction / the last Clear()? True iff some arena column was
  /// touched or some sparse buffer holds entries. A superset check in the
  /// same sense as the dirty bitmap: net-zero DENSE streams still report
  /// dirty (their columns were written), but an untouched or net-zero
  /// SPARSE delta reports clean -- either way, a clean delta's merge
  /// cannot change any extraction, which is what cache validity needs.
  bool SnapshotDirty() const;

  /// The retained reference decoder: re-sums every component from its
  /// members' arena rows each round (the pre-incremental algorithm), with
  /// the same sampling, validation, union order, and early-exit rule.
  /// Produces a bit-identical Hypergraph to ExtractSpanningGraph (the
  /// extraction differential suite asserts this); kept as the oracle for
  /// the incremental path and for the bench's old-vs-new row.
  Result<Hypergraph> ExtractSpanningGraphReference(
      size_t threads = 0, ExtractStats* stats = nullptr) const;

  /// True iff the other sketch carries bit-identical per-vertex state
  /// (same n, rounds, and measurement values; for the determinism suite).
  /// The sparse buffers ARE measurement (the exact phase's state); the
  /// update counters are NOT -- they count updates, so a net-zero stream
  /// would otherwise stop equalling a fresh sketch. The determinism suite
  /// pins the counters at serialized-frame strength instead.
  bool StateEquals(const SpanningForestSketch& other) const {
    return n_ == other.n_ && rounds_ == other.rounds_ &&
           state_index_ == other.state_index_ && arena_ == other.arena_ &&
           buffers_ == other.buffers_;
  }

  /// Cell-wise field addition of another sketch of the SAME measurement:
  /// equal seed, n, max_rank, rounds, and config. The other sketch's active
  /// set must be a SUBSET of this one's (equal sets are the sharded-merge
  /// case; a strict subset is the referee merging per-player single-vertex
  /// states into a full sketch). After a successful merge this sketch
  /// represents the multiset union of both streams. Mismatches return
  /// InvalidArgument and leave the state untouched.
  ///
  /// Sparse-aware: only the (vertex, round) columns the other sketch's
  /// dirty bitmap marks as touched are added. An untouched column is still
  /// the zero measurement (adding it would be the field identity), so the
  /// result is bit-identical to a dense merge -- but a sharded-merge clone
  /// that ingested a short stream slice merges in time proportional to the
  /// cells its slice actually hit, not the arena size.
  Status MergeFrom(const SpanningForestSketch& other);

  /// A sketch of the SAME measurement (same seed, shapes shared, same
  /// active set) with zero cells and a clean dirty bitmap -- the
  /// sharded-merge private clone. Allocates the empty arena directly
  /// (lazily-zeroed pages); never copies this sketch's cells.
  SpanningForestSketch CloneEmpty() const {
    return SpanningForestSketch(*this, CloneEmptyTag{});
  }

  /// Zero every cell (the empty-stream measurement); shapes/active set stay.
  void Clear();

  /// Append one wire frame (wire::FrameType::kSpanningForest) to *out. The
  /// header carries seed, n, max_rank, rounds, config, and the active
  /// bitmap; the payload is the raw SoA arena.
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parse a frame produced by Serialize. Truncation, corruption, and shape
  /// mismatches return Status; never aborts.
  static Result<SpanningForestSketch> Deserialize(
      std::span<const uint8_t> bytes);

  /// Measured serialized-frame size in bytes (bytes on the wire).
  size_t SpaceBytes() const;

  /// Raw cell words for COMPOSITE frames (a container sketch writes one
  /// frame whose payload concatenates its sub-sketches' cells; the
  /// container header's seed reconstructs every sub-shape).
  void AppendCells(wire::Writer* w) const;
  Status ReadCells(wire::Reader* r);

  /// Total bytes of per-vertex sketch state (the paper's space measure).
  size_t MemoryBytes() const;

  /// Number of linear-measurement cells per vertex (sketch "size").
  size_t CellsPerVertex() const;

  const EdgeCodec& codec() const { return codec_; }

 private:
  /// Shares every shape/index member with `other` but allocates a fresh
  /// zero arena and clean dirty bitmap (see CloneEmpty).
  SpanningForestSketch(const SpanningForestSketch& other, CloneEmptyTag);

  /// Apply hyperedge e (prepared coordinate) to round t's column only.
  /// `endpoint_dense` (parallel to e's positions) restricts the write to
  /// the flagged endpoints -- the hybrid column ingest absorbs the sparse
  /// endpoints in a serial pre-pass and fans only the dense ones out here.
  void ApplyToRound(int t, const Hyperedge& e, const PreparedCoord& pc,
                    int delta, const char* endpoint_dense = nullptr);

  /// Hybrid phase predicates. A sketch built with sparse_threshold == 0
  /// allocates no counters at all and reports every ordinal escalated.
  bool Hybrid() const { return !counters_.empty(); }
  bool Escalated(size_t ord) const {
    return counters_.empty() ||
           counters_[ord] > params_.config.sparse_threshold;
  }

  /// The dense single-endpoint apply: add coeff * coordinate pc to every
  /// round column of ordinal `ord`. Bit-identical to ApplyToRound's
  /// per-endpoint write (every cell is an exact field value, so the
  /// coefficient-times-unit product equals the staged per-endpoint form).
  void ApplyLocalOrd(size_t ord, const PreparedCoord& pc, int64_t coeff,
                     bool concurrent);

  /// Sparse phase: record one endpoint update (saturating counter bump +
  /// sorted buffer insert with net-zero cancellation). Returns false when
  /// THIS update crossed the threshold: the buffer has been replayed into
  /// the arena (EscalateOrdinal) and the caller must apply the current
  /// update densely.
  bool AbsorbUpdate(size_t ord, const PreparedCoord& pc, int64_t coeff,
                    bool concurrent);

  /// Cross ordinal `ord` into the dense phase: replay its buffered updates
  /// through the SoA kernel into the arena -- bit-identical to a
  /// dense-from-the-start vertex because each cell is an exact field value
  /// and a key's net weight contributes exactly the sum of its individual
  /// updates -- then mark the touched columns and release the buffer.
  void EscalateOrdinal(size_t ord, bool concurrent);

  /// Field-add ord's buffered updates into `dst`, an accumulator laid out
  /// like the arena's per-vertex rows [w0, w1) (stride state_words_), and
  /// OR the exact level bits into masks[r - w0]. Extraction gives sparse
  /// members of multi-vertex components their exact contribution this way.
  void ReplayBufferRounds(size_t ord, int w0, int w1, uint64_t* dst,
                          uint64_t* masks) const;

  /// Prefetch round t's target cells for hyperedge e (see PrefetchPrepared).
  void PrefetchRound(int t, const Hyperedge& e, const PreparedCoord& pc) const;

  /// The column-sharded batched ingest (encode once, shard the Borůvka
  /// rounds across workers). Process() dispatches here unless sharded
  /// merge applies; RemoveHyperedges batches its subtraction through it so
  /// the k-skeleton peeling gets the same prefetch + round fan-out.
  void ProcessColumns(std::span<const StreamUpdate> updates);

  /// Shared Borůvka driver: incremental or reference accumulation.
  Result<Hypergraph> ExtractImpl(size_t threads, ExtractStats* stats,
                                 bool incremental) const;

  /// The hybrid exact pre-round shared by ExtractImpl and
  /// ExtractSparseExact: feed every sparse vertex's buffered hyperedges
  /// into the union-find verbatim (active-vertex order, key order),
  /// appending each merging edge to *result. Returns the edges added.
  uint64_t SparsePreRound(UnionFind* uf, Hypergraph* result) const;

  /// Sample round t's accumulated state `src` (whose nonzero levels are
  /// covered by `src_mask`; pass all-ones for a dense scan) for component
  /// group g and validate it into a crossing hyperedge (value magnitude,
  /// active endpoints, crosses the boundary). Returns true and fills *out
  /// on success; *probe always reflects the attempt.
  bool SampleGroupEdge(int t, const uint64_t* src, uint64_t src_mask,
                       const std::vector<int64_t>& comp, size_t g,
                       Hyperedge* out, L0SampleProbe* probe) const;

  /// Mark vertex v's round-t column as touched since the last Clear().
  /// Layout is ROUND-major ((t, active ordinal), each round padded to a
  /// word boundary): the column-sharded ingest gives each worker a block
  /// of rounds, so workers never read-modify-write a shared bitmap word.
  void MarkDirty(int t, VertexId v) {
    MarkDirtyOrd(t, static_cast<size_t>(state_index_[v]));
  }
  void MarkDirtyOrd(int t, size_t ord) {
    dirty_[static_cast<size_t>(t) * dirty_words_per_round_ + (ord >> 6)] |=
        uint64_t{1} << (ord & 63);
  }
  /// MarkDirty for the gutter driver's concurrent appliers: a round-major
  /// dirty word packs 64 vertex ordinals, and the appliers' vertex shards
  /// are not 64-aligned in ordinal space (a container's subsampled active
  /// sets make that impossible in general), so two appliers may mark the
  /// same word. A relaxed atomic OR keeps the final bitmap -- a monotone
  /// union read only after the drive's join -- exact and race-free.
  void MarkDirtyConcurrent(int t, VertexId v) {
    MarkDirtyOrdConcurrent(t, static_cast<size_t>(state_index_[v]));
  }
  void MarkDirtyOrdConcurrent(int t, size_t ord) {
    __atomic_fetch_or(
        &dirty_[static_cast<size_t>(t) * dirty_words_per_round_ + (ord >> 6)],
        uint64_t{1} << (ord & 63), __ATOMIC_RELAXED);
  }
  bool IsDirty(int t, size_t ord) const {
    return (dirty_[static_cast<size_t>(t) * dirty_words_per_round_ +
                   (ord >> 6)] >>
            (ord & 63)) &
           1;
  }
  /// Conservatively mark every column touched and every level mask full
  /// (deserialized payloads carry neither; correctness only needs the
  /// summaries to be supersets of the nonzero cells).
  void MarkAllDirty();

  /// Record that an update routed to `level` of vertex v's round-t column
  /// (LevelMaskBit semantics; see sketch/l0_sampler.h). Extraction and
  /// MergeFrom then add/sample only the marked level segments -- for a
  /// low-degree vertex that is ~log(degree) of the ~log(domain) levels,
  /// which is where the finalize path's bandwidth goes.
  void MarkLevel(int t, VertexId v, int level) {
    MarkLevelOrd(t, static_cast<size_t>(state_index_[v]), level);
  }
  void MarkLevelOrd(int t, size_t ord, int level) {
    level_mask_[ord * static_cast<size_t>(rounds_) + static_cast<size_t>(t)] |=
        LevelMaskBit(level);
  }
  uint64_t ColumnLevelMask(size_t ord, int t) const {
    return level_mask_[ord * static_cast<size_t>(rounds_) +
                       static_cast<size_t>(t)];
  }

  /// Start of vertex v's round-t sampler in the arena (v must be active).
  /// The address is pure arithmetic on the dense index -- no pointer chase
  /// through per-vertex objects -- so random-vertex updates expose every
  /// cache miss to the out-of-order window instead of serializing a
  /// state -> level-vector -> cell-array dependency chain.
  uint64_t* ArenaAt(VertexId v, int t) {
    return ColAt(static_cast<size_t>(state_index_[v]), t);
  }
  const uint64_t* ArenaAt(VertexId v, int t) const {
    return const_cast<SpanningForestSketch*>(this)->ArenaAt(v, t);
  }
  uint64_t* ColAt(size_t ord, int t) {
    return arena_.data() +
           (ord * static_cast<size_t>(rounds_) + static_cast<size_t>(t)) *
               state_words_;
  }
  const uint64_t* ColAt(size_t ord, int t) const {
    return const_cast<SpanningForestSketch*>(this)->ColAt(ord, t);
  }

  size_t n_;
  int rounds_;
  uint64_t seed_;
  Params params_;
  EdgeCodec codec_;
  // Shapes are immutable and shared between copies of the sketch (copies
  // carry the same measurement, which is exactly what linearity requires).
  std::vector<std::shared_ptr<const L0Shape>> round_shapes_;
  // Dense ordinal of each active vertex, -1 if inactive.
  std::vector<int64_t> state_index_;
  size_t num_active_ = 0;
  // Every active vertex's sampler state for every round, in ONE flat
  // allocation: [active ordinal][round][level segment] with rounds
  // contiguous per vertex. state_words_ = words per (vertex, round) = the
  // shared L0Shape::TotalWords() (all rounds have identical geometry).
  size_t state_words_ = 0;
  ZeroedBuffer arena_;
  // Transient touched-column bitmap (round-major; see MarkDirty): which
  // (vertex, round) columns have been updated since construction/Clear().
  // A superset of the nonzero columns, never part of the measurement: it
  // does not travel on the wire (frames are unchanged from the PR 3
  // format; deserialization marks everything dirty) and does not affect
  // StateEquals.
  size_t dirty_words_per_round_ = 0;
  std::vector<uint64_t> dirty_;
  // Transient per-(vertex, round) nonzero-LEVEL summary (vertex-major,
  // [ord * rounds + t]; LevelMaskBit semantics). Like dirty_: a superset
  // of the truly-nonzero segments, never on the wire, ignored by
  // StateEquals; deserialization conservatively fills it with all-ones.
  std::vector<uint64_t> level_mask_;
  // Hybrid sparse phase (DESIGN.md Section 12; both vectors stay EMPTY when
  // config.sparse_threshold == 0, so the dense configuration pays nothing).
  // counters_[ord] counts ord's updates, saturating at threshold + 1:
  // min(a + b, threshold + 1) is associative and commutative, so sharded
  // counters merge to exactly the serial count, and ord is escalated iff
  // its counter exceeds the threshold. Counters and buffers travel on the
  // wire (the phase must survive a round trip or later merges would
  // escalate at different points than the original), but counters are NOT
  // part of StateEquals (see there).
  std::vector<uint32_t> counters_;
  // Per-ordinal exact signed-adjacency buffer: encoded update key + net
  // int64 weight, sorted by key, an entry erased the moment its weight
  // cancels to zero. Escalated ordinals keep an empty vector.
  std::vector<std::vector<SparseEntry>> buffers_;
  // Active ordinals still in the sparse phase. 0 sends every ingest path
  // down the pre-hybrid dense branch (one predictable branch on the hot
  // path); decremented with a relaxed atomic where appliers run
  // concurrently (monotone countdown, read only as a != 0 phase gate).
  size_t sparse_remaining_ = 0;
};

}  // namespace gms

#endif  // GMS_CONNECTIVITY_SPANNING_FOREST_SKETCH_H_
