// The AGM spanning-graph sketch (Theorem 2 for graphs, Theorem 13 for
// hypergraphs): every vertex keeps one L0-sampler of its incidence vector
// per Borůvka round; summing the samplers of a component yields a sampler
// of the component's cut vector (by linearity and the Section 4.1
// encoding), so each round contracts every component along a sampled
// crossing hyperedge. O(log n) rounds connect everything whp.
//
// The sketch is vertex-based in the paper's sense: each vertex's state is a
// linear function of the hyperedges incident to that vertex only, which is
// what the simultaneous-communication protocol in comm/ relies on.
#ifndef GMS_CONNECTIVITY_SPANNING_FOREST_SKETCH_H_
#define GMS_CONNECTIVITY_SPANNING_FOREST_SKETCH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/edge_codec.h"
#include "graph/hypergraph.h"
#include "sketch/l0_sampler.h"
#include "sketch/sketch_config.h"
#include "stream/stream.h"
#include "util/parallel.h"
#include "util/status.h"

namespace gms {

struct ForestSketchParams {
  SketchConfig config = SketchConfig::Default();
  /// Borůvka rounds; 0 means ceil(log2 n) + config.extra_boruvka_rounds.
  int rounds = 0;
  /// Worker threads + ingestion mode for batched Process and for the
  /// per-round component summation in ExtractSpanningGraph (see
  /// util/parallel.h; outputs are bit-identical for every setting).
  EngineParams engine;
};

/// Wire helpers: forest params are part of every forest-based frame header.
/// Engine knobs (threads/mode) are LOCAL execution policy, not measurement
/// shape, so they do not travel; deserialized sketches come back serial.
void WriteForestParams(const ForestSketchParams& params, wire::Writer* w);
Status ReadForestParams(wire::Reader* r, ForestSketchParams* params);

/// Exact cell words per (active vertex, round) of a forest-based sketch
/// over (n, max_rank, config), computed without constructing anything:
/// EdgeCodec::DomainSizeFor -> L0StateWords. Deserializers multiply this
/// into a shape-implied payload size and reject mismatched frames BEFORE
/// allocating, so a tiny hostile frame cannot command a huge allocation.
/// InvalidArgument for (n, max_rank) whose domain exceeds 126 bits.
Result<uint64_t> ForestStateWords(size_t n, size_t max_rank,
                                  const SketchConfig& config);

class SpanningForestSketch {
 public:
  using Params = ForestSketchParams;

  /// Sketch for hypergraphs on n vertices with hyperedge cardinality up to
  /// max_rank (use 2 for graphs: the domain, and hence the number of
  /// subsampling levels, shrinks accordingly). If `active` is non-null,
  /// state is allocated only for vertices with active[v] = true and the
  /// decoded graph treats inactive vertices as absent (used by the
  /// vertex-subsampling construction of Section 3).
  SpanningForestSketch(size_t n, size_t max_rank, uint64_t seed,
                       const Params& params = Params(),
                       const std::vector<bool>* active = nullptr);

  size_t n() const { return n_; }
  size_t max_rank() const { return codec_.max_rank(); }
  int rounds() const { return rounds_; }
  uint64_t seed() const { return seed_; }
  bool IsActive(VertexId v) const { return state_index_[v] >= 0; }

  /// Linear update: insert (delta=+1) or delete (delta=-1) hyperedge e.
  /// CHECK-fails if any endpoint is inactive (callers filter first).
  void Update(const Hyperedge& e, int delta);

  /// As Update, with codec().Encode(e) precomputed by the caller. Containers
  /// holding many sketches over the same (n, max_rank) domain encode each
  /// stream update once and fan it out to every sketch with this.
  void UpdateEncoded(const Hyperedge& e, u128 index, int delta);

  /// As UpdateEncoded with the coordinate fully prepared (folded + exponent
  /// reduced). The preparation is shape-independent, so containers fanning
  /// one update out to many sketches prepare once for all of them.
  void UpdatePrepared(const Hyperedge& e, const PreparedCoord& pc, int delta);

  /// Batched ingestion. Column mode encodes each update once, then shards
  /// the Borůvka rounds (independent sketch columns) across the workers;
  /// sharded-merge mode slices the stream into private clones and
  /// tree-merges (see util/parallel.h). Bit-identical to updating serially
  /// in order either way.
  void Process(std::span<const StreamUpdate> updates);

  /// Prefetch the cells UpdatePrepared(e, pc, .) will touch. Batch ingest
  /// paths call this a few updates ahead: the arena is far larger than
  /// cache and updates land at random vertices, so without lookahead each
  /// update stalls on compulsory misses the out-of-order window cannot
  /// reach. Purely a hint; no state changes.
  void PrefetchPrepared(const Hyperedge& e, const PreparedCoord& pc) const {
    for (int t = 0; t < rounds_; ++t) PrefetchRound(t, e, pc);
  }

  /// Ingest a whole stream.
  void Process(const DynamicStream& stream);

  /// Update ONLY vertex v's measurement for hyperedge e (v must be in e).
  /// This is the per-player operation of the simultaneous-communication
  /// model: player v's message depends on v's incident edges alone.
  /// Applying UpdateLocal for every endpoint of e equals Update(e, delta).
  void UpdateLocal(VertexId v, const Hyperedge& e, int delta);

  /// Subtract a known subgraph (linearity; used by k-skeleton layering).
  void RemoveHyperedges(const std::vector<Hyperedge>& edges);

  /// Decode a spanning graph of the sketched hypergraph, restricted to
  /// active vertices. The result has the same connected components as the
  /// input whp; per-round sampling failures are tolerated (extra rounds
  /// absorb them) and surface only as a disconnected-looking result.
  /// Within each round the per-component sketch summations fan out across
  /// `threads` workers (0 = the engine.threads this sketch was built with);
  /// components merge in a fixed order, so the decode is deterministic.
  Result<Hypergraph> ExtractSpanningGraph(size_t threads = 0) const;

  /// True iff the other sketch carries bit-identical per-vertex state
  /// (same n, rounds, and measurement values; for the determinism suite).
  bool StateEquals(const SpanningForestSketch& other) const {
    return n_ == other.n_ && rounds_ == other.rounds_ &&
           state_index_ == other.state_index_ && arena_ == other.arena_;
  }

  /// Cell-wise field addition of another sketch of the SAME measurement:
  /// equal seed, n, max_rank, rounds, and config. The other sketch's active
  /// set must be a SUBSET of this one's (equal sets are the sharded-merge
  /// case; a strict subset is the referee merging per-player single-vertex
  /// states into a full sketch). After a successful merge this sketch
  /// represents the multiset union of both streams. Mismatches return
  /// InvalidArgument and leave the state untouched.
  Status MergeFrom(const SpanningForestSketch& other);

  /// Zero every cell (the empty-stream measurement); shapes/active set stay.
  void Clear();

  /// Append one wire frame (wire::FrameType::kSpanningForest) to *out. The
  /// header carries seed, n, max_rank, rounds, config, and the active
  /// bitmap; the payload is the raw SoA arena.
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parse a frame produced by Serialize. Truncation, corruption, and shape
  /// mismatches return Status; never aborts.
  static Result<SpanningForestSketch> Deserialize(
      std::span<const uint8_t> bytes);

  /// Measured serialized-frame size in bytes (bytes on the wire).
  size_t SpaceBytes() const;

  /// Raw cell words for COMPOSITE frames (a container sketch writes one
  /// frame whose payload concatenates its sub-sketches' cells; the
  /// container header's seed reconstructs every sub-shape).
  void AppendCells(wire::Writer* w) const;
  Status ReadCells(wire::Reader* r);

  /// Total bytes of per-vertex sketch state (the paper's space measure).
  size_t MemoryBytes() const;

  /// Number of linear-measurement cells per vertex (sketch "size").
  size_t CellsPerVertex() const;

  const EdgeCodec& codec() const { return codec_; }

 private:
  /// Apply hyperedge e (prepared coordinate) to round t's column only.
  void ApplyToRound(int t, const Hyperedge& e, const PreparedCoord& pc,
                    int delta);

  /// Prefetch round t's target cells for hyperedge e (see PrefetchPrepared).
  void PrefetchRound(int t, const Hyperedge& e, const PreparedCoord& pc) const;

  /// Start of vertex v's round-t sampler in the arena (v must be active).
  /// The address is pure arithmetic on the dense index -- no pointer chase
  /// through per-vertex objects -- so random-vertex updates expose every
  /// cache miss to the out-of-order window instead of serializing a
  /// state -> level-vector -> cell-array dependency chain.
  uint64_t* ArenaAt(VertexId v, int t) {
    return arena_.data() + (static_cast<size_t>(state_index_[v]) *
                                static_cast<size_t>(rounds_) +
                            static_cast<size_t>(t)) *
                               state_words_;
  }
  const uint64_t* ArenaAt(VertexId v, int t) const {
    return const_cast<SpanningForestSketch*>(this)->ArenaAt(v, t);
  }

  size_t n_;
  int rounds_;
  uint64_t seed_;
  Params params_;
  EdgeCodec codec_;
  // Shapes are immutable and shared between copies of the sketch (copies
  // carry the same measurement, which is exactly what linearity requires).
  std::vector<std::shared_ptr<const L0Shape>> round_shapes_;
  // Dense ordinal of each active vertex, -1 if inactive.
  std::vector<int64_t> state_index_;
  // Every active vertex's sampler state for every round, in ONE flat
  // allocation: [active ordinal][round][level segment] with rounds
  // contiguous per vertex. state_words_ = words per (vertex, round) = the
  // shared L0Shape::TotalWords() (all rounds have identical geometry).
  size_t state_words_ = 0;
  std::vector<uint64_t> arena_;
};

}  // namespace gms

#endif  // GMS_CONNECTIVITY_SPANNING_FOREST_SKETCH_H_
