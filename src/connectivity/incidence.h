// The paper's hyperedge incidence encoding (Section 4.1): vertex i's vector
// a^i has, at the coordinate of hyperedge e,
//     |e| - 1  if i = min e,
//     -1       if i in e \ {min e},
//     0        otherwise.
// For any vertex set S, sum_{i in S} a^i is nonzero exactly on delta(S):
// the only sub-multisets of {|e|-1, -1, ..., -1} summing to zero are the
// empty one and the whole one. This is the property the Borůvka decode
// relies on.
#ifndef GMS_CONNECTIVITY_INCIDENCE_H_
#define GMS_CONNECTIVITY_INCIDENCE_H_

#include <cstdint>

#include "graph/edge.h"

namespace gms {

/// Coefficient of vertex i at hyperedge e's coordinate (0 if i not in e).
inline int64_t IncidenceCoefficient(const Hyperedge& e, VertexId i) {
  if (!e.Contains(i)) return 0;
  return i == e.MinVertex() ? static_cast<int64_t>(e.size()) - 1 : -1;
}

}  // namespace gms

#endif  // GMS_CONNECTIVITY_INCIDENCE_H_
