// High-level dynamic-stream query objects built on the spanning-graph and
// k-skeleton sketches: connectivity, component counting, and k-edge-
// connectivity for graphs AND hypergraphs (the paper's "first dynamic graph
// algorithm for determining hypergraph connectivity", Section 4.1).
#ifndef GMS_CONNECTIVITY_CONNECTIVITY_QUERY_H_
#define GMS_CONNECTIVITY_CONNECTIVITY_QUERY_H_

#include <cstdint>

#include "connectivity/k_skeleton.h"
#include "connectivity/spanning_forest_sketch.h"
#include "exact/hypergraph_mincut.h"

namespace gms {

/// Single-pass connectivity / component counting over a dynamic hyperedge
/// stream using one spanning-graph sketch (O(n polylog n) space).
class ConnectivityQuery {
 public:
  ConnectivityQuery(size_t n, size_t max_rank, uint64_t seed,
                    const SpanningForestSketch::Params& params =
                        SpanningForestSketch::Params());

  void Update(const Hyperedge& e, int delta) { sketch_.Update(e, delta); }
  void Process(const DynamicStream& stream) { sketch_.Process(stream); }

  /// Is the sketched hypergraph connected? (One-sided whp guarantee: a
  /// "true" answer is always correct since the witness is an actual
  /// spanning subgraph; "false" may be a sampler failure with small
  /// probability.)
  Result<bool> IsConnected() const;

  Result<size_t> NumComponents() const;

  /// Are u and v in the same connected component? (Same one-sidedness as
  /// IsConnected: "true" is witnessed by actual edges.)
  Result<bool> SameComponent(VertexId u, VertexId v) const;

  /// The witness spanning subgraph itself.
  Result<Hypergraph> SpanningGraph() const {
    return sketch_.ExtractSpanningGraph();
  }

  size_t MemoryBytes() const { return sketch_.MemoryBytes(); }

  /// The underlying sketch, for callers that drive ingestion themselves
  /// (the gutter driver's DriveStream takes the sketch directly so fault
  /// hooks and stats can be threaded through; see testkit/oracle.cc).
  SpanningForestSketch& sketch() { return sketch_; }

 private:
  SpanningForestSketch sketch_;
};

/// Dynamic k-edge-connectivity: a hypergraph is k-edge-connected iff its
/// k-skeleton is (Definition 11); the skeleton's min cut equals
/// min(k, mincut(G)) so the sketch also reports min(k, edge connectivity).
class EdgeConnectivityQuery {
 public:
  EdgeConnectivityQuery(size_t n, size_t max_rank, size_t k, uint64_t seed,
                        const SpanningForestSketch::Params& params =
                            SpanningForestSketch::Params());

  void Update(const Hyperedge& e, int delta) { sketch_.Update(e, delta); }
  void Process(const DynamicStream& stream) { sketch_.Process(stream); }

  /// min(k, edge connectivity of G), computed exactly on the decoded
  /// skeleton.
  Result<size_t> EdgeConnectivityCapped() const;

  Result<bool> IsKEdgeConnected() const;

  /// A cut achieving the capped value. When value < k, the returned shore
  /// is a GENUINE minimum cut of G: a skeleton cut of size c < k preserves
  /// the corresponding G-cut exactly (|delta_H(S)| >= min(|delta_G(S)|, k)
  /// forces |delta_G(S)| = c). When value == k it is only a witness that
  /// every G-cut has size >= k.
  Result<HypergraphCut> MinCut() const;

  /// The decoded k-skeleton.
  Result<Hypergraph> Skeleton() const { return sketch_.Extract(); }

  size_t k() const { return sketch_.k(); }
  size_t MemoryBytes() const { return sketch_.MemoryBytes(); }

 private:
  KSkeletonSketch sketch_;
};

}  // namespace gms

#endif  // GMS_CONNECTIVITY_CONNECTIVITY_QUERY_H_
