#include "connectivity/k_skeleton.h"

#include <new>

#include "stream/sharded_merge.h"
#include "stream/stream_driver.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"
#include "wire/wire.h"

namespace gms {

KSkeletonSketch::KSkeletonSketch(size_t n, size_t max_rank, size_t k,
                                 uint64_t seed, const Params& params)
    : n_(n), k_(k), seed_(seed), params_(params) {
  GMS_CHECK(k >= 1);
  Rng rng(seed);
  layers_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    layers_.emplace_back(n, max_rank, rng.Fork(), params);
  }
}

KSkeletonSketch::KSkeletonSketch(const KSkeletonSketch& other, CloneEmptyTag)
    : n_(other.n_), k_(other.k_), seed_(other.seed_), params_(other.params_) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) {
    layers_.push_back(layer.CloneEmpty());
  }
}

void KSkeletonSketch::Update(const Hyperedge& e, int delta) {
  if (layers_.empty()) return;
  UpdateEncoded(e, layers_[0].codec().Encode(e), delta);
}

void KSkeletonSketch::UpdateEncoded(const Hyperedge& e, u128 index,
                                    int delta) {
  UpdatePrepared(e, PrepareCoord(index), delta);
}

void KSkeletonSketch::UpdatePrepared(const Hyperedge& e,
                                     const PreparedCoord& pc, int delta) {
  for (auto& layer : layers_) layer.UpdatePrepared(e, pc, delta);
}

void KSkeletonSketch::Process(std::span<const StreamUpdate> updates) {
  if (layers_.empty() || updates.empty()) return;
  if (UseGutterDriver(params_.engine, updates.size())) {
    DriveStream(this, updates, DriverParamsFromEngine(params_.engine));
    return;
  }
  if (UseShardedMerge(params_.engine, updates.size())) {
    ShardedMergeIngest(
        this, updates,
        ShardedMergeShards(params_.engine.threads, updates.size()));
    return;
  }
  // One encode + coordinate preparation per update, shared by all k layers.
  const EdgeCodec& codec = layers_[0].codec();
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.size() <= codec.max_rank(),
                  "hyperedge exceeds max_rank");
    prepared[j] = PrepareCoord(codec.Encode(updates[j].edge));
  }
  // Layers are independent sketches; shard them across the pool.
  ParallelFor(params_.engine.threads, layers_.size(),
              [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < updates.size(); ++j) {
        layers_[i].UpdatePrepared(updates[j].edge, prepared[j],
                                  updates[j].delta);
      }
    }
  });
}

void KSkeletonSketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

void KSkeletonSketch::RemoveHyperedges(const std::vector<Hyperedge>& edges) {
  for (auto& layer : layers_) layer.RemoveHyperedges(edges);
}

Result<Hypergraph> KSkeletonSketch::Extract(ExtractStats* stats) const {
  Hypergraph skeleton(n_);
  std::vector<Hyperedge> accumulated;
  if (stats != nullptr) *stats = ExtractStats();
  for (size_t i = 0; i < k_; ++i) {
    // A^i(G - F_1 - ... - F_{i-1}) = A^i(G) - sum_j A^i(F_j): subtract the
    // accumulated layers from a copy of layer i, then decode.
    SpanningForestSketch layer = layers_[i];
    layer.RemoveHyperedges(accumulated);
    // Layers must decode sequentially (each subtracts its predecessors),
    // but each decode's per-round component summations use the pool.
    ExtractStats layer_stats;
    auto forest = layer.ExtractSpanningGraph(
        params_.engine.threads, stats != nullptr ? &layer_stats : nullptr);
    if (!forest.ok()) return forest.status();
    if (stats != nullptr) AccumulateExtractStats(layer_stats, stats);
    for (const auto& e : forest->Edges()) {
      if (skeleton.AddEdge(e)) accumulated.push_back(e);
    }
  }
  return skeleton;
}

QueryResult<Hypergraph> KSkeletonSketch::Query() const {
  ExtractStats stats;
  auto skeleton = Extract(&stats);
  if (!skeleton.ok()) return QueryResult<Hypergraph>(skeleton.status());
  return QueryResult<Hypergraph>(std::move(*skeleton), std::move(stats));
}

bool KSkeletonSketch::SnapshotDirty() const {
  for (const auto& layer : layers_) {
    if (layer.SnapshotDirty()) return true;
  }
  return false;
}

Status KSkeletonSketch::MergeFrom(const KSkeletonSketch& other) {
  if (seed_ != other.seed_ || n_ != other.n_ || k_ != other.k_ ||
      layers_.size() != other.layers_.size()) {
    return Status::InvalidArgument(
        "KSkeletonSketch::MergeFrom: seed/shape mismatch (different "
        "measurement)");
  }
  // Validate every layer pair before mutating any, so a mismatch leaves the
  // whole sketch untouched. Layer seeds derive from the same fork chain, so
  // equal top-level seeds imply equal layer seeds; the check below catches
  // differing max_rank/params.
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].seed() != other.layers_[i].seed() ||
        layers_[i].max_rank() != other.layers_[i].max_rank() ||
        layers_[i].rounds() != other.layers_[i].rounds()) {
      return Status::InvalidArgument(
          "KSkeletonSketch::MergeFrom: seed/shape mismatch (different "
          "measurement)");
    }
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    GMS_RETURN_IF_ERROR(layers_[i].MergeFrom(other.layers_[i]));
  }
  return Status::OK();
}

void KSkeletonSketch::Clear() {
  for (auto& layer : layers_) layer.Clear();
}

void KSkeletonSketch::AppendCells(wire::Writer* w) const {
  for (const auto& layer : layers_) layer.AppendCells(w);
}

Status KSkeletonSketch::ReadCells(wire::Reader* r) {
  for (auto& layer : layers_) {
    GMS_RETURN_IF_ERROR(layer.ReadCells(r));
  }
  return Status::OK();
}

void KSkeletonSketch::Serialize(std::vector<uint8_t>* out) const {
  wire::FrameBuilder fb(wire::FrameType::kKSkeleton, out);
  fb.writer().U64(n_);
  fb.writer().U64(max_rank());
  fb.writer().U64(k_);
  fb.writer().U64(seed_);
  Params resolved = params_;
  resolved.rounds = layers_[0].rounds();
  WriteForestParams(resolved, &fb.writer());
  fb.EndHeader();
  AppendCells(&fb.writer());
  fb.Finish();
}

Result<KSkeletonSketch> KSkeletonSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  auto frame = wire::ParseFrame(bytes, wire::FrameType::kKSkeleton);
  if (!frame.ok()) return frame.status();
  wire::Reader header(frame->header);
  uint64_t n = 0, max_rank = 0, k = 0, seed = 0;
  Params params;
  GMS_RETURN_IF_ERROR(header.U64(&n));
  GMS_RETURN_IF_ERROR(header.U64(&max_rank));
  GMS_RETURN_IF_ERROR(header.U64(&k));
  GMS_RETURN_IF_ERROR(header.U64(&seed));
  GMS_RETURN_IF_ERROR(ReadForestParams(&header, &params));
  GMS_RETURN_IF_ERROR(header.ExpectEnd());
  if (n < 1 || n > (uint64_t{1} << 32) || max_rank < 2 || max_rank > n ||
      k < 1 || k > (uint64_t{1} << 20) || params.rounds < 1) {
    return Status::InvalidArgument("wire: k-skeleton shape out of range");
  }
  // k layers of all-active forests: skim each layer's self-sizing cell
  // section in turn and require the sum to account for the payload exactly
  // BEFORE construction. This keeps hostile in-range header fields (whose
  // PRODUCT is astronomical) from commanding allocations the payload never
  // backs, and applies the hybrid-section caps per layer.
  auto words = ForestStateWords(static_cast<size_t>(n),
                                static_cast<size_t>(max_rank), params.config);
  if (!words.ok()) return words.status();
  size_t offset = 0;
  for (uint64_t i = 0; i < k; ++i) {
    auto section = SkimForestCellSection(
        frame->payload.subspan(offset), n,
        static_cast<uint64_t>(params.rounds), *words,
        params.config.sparse_threshold);
    if (!section.ok()) return section.status();
    offset += *section;
  }
  if (offset != frame->payload.size()) {
    return Status::InvalidArgument(
        "wire: k-skeleton payload size disagrees with the header shape");
  }
  try {
    KSkeletonSketch sketch(static_cast<size_t>(n),
                           static_cast<size_t>(max_rank),
                           static_cast<size_t>(k), seed, params);
    wire::Reader payload(frame->payload);
    GMS_RETURN_IF_ERROR(sketch.ReadCells(&payload));
    GMS_RETURN_IF_ERROR(payload.ExpectEnd());
    return sketch;
  } catch (const std::bad_alloc&) {
    return Status::InvalidArgument(
        "wire: k-skeleton shape too large for available memory");
  }
}

size_t KSkeletonSketch::SpaceBytes() const {
  std::vector<uint8_t> frame;
  Serialize(&frame);
  return frame.size();
}

size_t KSkeletonSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.MemoryBytes();
  return total;
}

bool KSkeletonSketch::StateEquals(const KSkeletonSketch& other) const {
  if (layers_.size() != other.layers_.size()) return false;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].StateEquals(other.layers_[i])) return false;
  }
  return true;
}

}  // namespace gms
