#include "connectivity/k_skeleton.h"

#include "util/check.h"
#include "util/random.h"

namespace gms {

KSkeletonSketch::KSkeletonSketch(size_t n, size_t max_rank, size_t k,
                                 uint64_t seed,
                                 const SpanningForestSketch::Params& params)
    : n_(n), k_(k) {
  GMS_CHECK(k >= 1);
  Rng rng(seed);
  layers_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    layers_.emplace_back(n, max_rank, rng.Fork(), params);
  }
}

void KSkeletonSketch::Update(const Hyperedge& e, int delta) {
  for (auto& layer : layers_) layer.Update(e, delta);
}

void KSkeletonSketch::Process(const DynamicStream& stream) {
  for (const auto& u : stream) Update(u.edge, u.delta);
}

void KSkeletonSketch::RemoveHyperedges(const std::vector<Hyperedge>& edges) {
  for (auto& layer : layers_) layer.RemoveHyperedges(edges);
}

Result<Hypergraph> KSkeletonSketch::Extract() const {
  Hypergraph skeleton(n_);
  std::vector<Hyperedge> accumulated;
  for (size_t i = 0; i < k_; ++i) {
    // A^i(G - F_1 - ... - F_{i-1}) = A^i(G) - sum_j A^i(F_j): subtract the
    // accumulated layers from a copy of layer i, then decode.
    SpanningForestSketch layer = layers_[i];
    layer.RemoveHyperedges(accumulated);
    auto forest = layer.ExtractSpanningGraph();
    if (!forest.ok()) return forest.status();
    for (const auto& e : forest->Edges()) {
      if (skeleton.AddEdge(e)) accumulated.push_back(e);
    }
  }
  return skeleton;
}

size_t KSkeletonSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.MemoryBytes();
  return total;
}

}  // namespace gms
