#include "connectivity/k_skeleton.h"

#include "util/check.h"
#include "util/parallel.h"
#include "util/random.h"

namespace gms {

KSkeletonSketch::KSkeletonSketch(size_t n, size_t max_rank, size_t k,
                                 uint64_t seed,
                                 const SpanningForestSketch::Params& params)
    : n_(n), k_(k), threads_(params.threads) {
  GMS_CHECK(k >= 1);
  Rng rng(seed);
  layers_.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    layers_.emplace_back(n, max_rank, rng.Fork(), params);
  }
}

void KSkeletonSketch::Update(const Hyperedge& e, int delta) {
  if (layers_.empty()) return;
  UpdateEncoded(e, layers_[0].codec().Encode(e), delta);
}

void KSkeletonSketch::UpdateEncoded(const Hyperedge& e, u128 index,
                                    int delta) {
  UpdatePrepared(e, PrepareCoord(index), delta);
}

void KSkeletonSketch::UpdatePrepared(const Hyperedge& e,
                                     const PreparedCoord& pc, int delta) {
  for (auto& layer : layers_) layer.UpdatePrepared(e, pc, delta);
}

void KSkeletonSketch::Process(std::span<const StreamUpdate> updates) {
  if (layers_.empty() || updates.empty()) return;
  // One encode + coordinate preparation per update, shared by all k layers.
  const EdgeCodec& codec = layers_[0].codec();
  std::vector<PreparedCoord> prepared(updates.size());
  for (size_t j = 0; j < updates.size(); ++j) {
    GMS_CHECK_MSG(updates[j].edge.size() <= codec.max_rank(),
                  "hyperedge exceeds max_rank");
    prepared[j] = PrepareCoord(codec.Encode(updates[j].edge));
  }
  // Layers are independent sketches; shard them across the pool.
  ParallelFor(threads_, layers_.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < updates.size(); ++j) {
        layers_[i].UpdatePrepared(updates[j].edge, prepared[j],
                                  updates[j].delta);
      }
    }
  });
}

void KSkeletonSketch::Process(const DynamicStream& stream) {
  Process(std::span<const StreamUpdate>(stream.updates()));
}

void KSkeletonSketch::RemoveHyperedges(const std::vector<Hyperedge>& edges) {
  for (auto& layer : layers_) layer.RemoveHyperedges(edges);
}

Result<Hypergraph> KSkeletonSketch::Extract() const {
  Hypergraph skeleton(n_);
  std::vector<Hyperedge> accumulated;
  for (size_t i = 0; i < k_; ++i) {
    // A^i(G - F_1 - ... - F_{i-1}) = A^i(G) - sum_j A^i(F_j): subtract the
    // accumulated layers from a copy of layer i, then decode.
    SpanningForestSketch layer = layers_[i];
    layer.RemoveHyperedges(accumulated);
    // Layers must decode sequentially (each subtracts its predecessors),
    // but each decode's per-round component summations use the pool.
    auto forest = layer.ExtractSpanningGraph(threads_);
    if (!forest.ok()) return forest.status();
    for (const auto& e : forest->Edges()) {
      if (skeleton.AddEdge(e)) accumulated.push_back(e);
    }
  }
  return skeleton;
}

size_t KSkeletonSketch::MemoryBytes() const {
  size_t total = 0;
  for (const auto& layer : layers_) total += layer.MemoryBytes();
  return total;
}

bool KSkeletonSketch::StateEquals(const KSkeletonSketch& other) const {
  if (layers_.size() != other.layers_.size()) return false;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].StateEquals(other.layers_[i])) return false;
  }
  return true;
}

}  // namespace gms
