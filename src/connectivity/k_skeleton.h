// k-skeleton sketches (Definition 11, Theorem 14): k independent
// spanning-graph sketches A^1..A^k. F_i is extracted as a spanning graph of
// G - F_1 - ... - F_{i-1}, obtained by LINEARLY subtracting the already-
// extracted layers from sketch A^i -- the independence of the k sketches is
// what makes the union-bound argument valid (Section 4.2 discusses at
// length why reusing one sketch adaptively is unsound; see
// tests/adaptive_reuse_test.cc for an empirical demonstration).
#ifndef GMS_CONNECTIVITY_K_SKELETON_H_
#define GMS_CONNECTIVITY_K_SKELETON_H_

#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"

namespace gms {

class KSkeletonSketch {
 public:
  using Params = SpanningForestSketch::Params;

  /// Sketch from which a k-skeleton of a hypergraph on n vertices (edges of
  /// cardinality <= max_rank) can be extracted.
  KSkeletonSketch(size_t n, size_t max_rank, size_t k, uint64_t seed,
                  const Params& params = Params());

  size_t n() const { return n_; }
  size_t k() const { return k_; }
  size_t max_rank() const { return layers_[0].max_rank(); }
  uint64_t seed() const { return seed_; }
  /// Resolved Borůvka rounds of the per-layer forest sketches.
  int rounds() const { return layers_[0].rounds(); }

  void Update(const Hyperedge& e, int delta);

  /// As Update with the codec index precomputed (all k layers share one
  /// (n, max_rank) domain, so containers of skeleton sketches -- e.g. the
  /// sparsifier's levels -- encode each update exactly once).
  void UpdateEncoded(const Hyperedge& e, u128 index, int delta);

  /// As UpdateEncoded with the coordinate fully prepared (fold + exponent
  /// are shape-independent, so one preparation serves every layer).
  void UpdatePrepared(const Hyperedge& e, const PreparedCoord& pc, int delta);

  /// Batched ingestion: encodes each update once and shards the k
  /// independent layers across params.engine.threads workers (bit-identical to
  /// the serial path; each layer is owned by one worker).
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream);

  /// Gutter-driver hooks (stream/stream_driver.h): the shared codec, the
  /// trivial routing mask (every layer receives every update), and the
  /// batch fan-out to all k layers.
  const EdgeCodec& codec() const { return layers_[0].codec(); }
  uint64_t DriverRouteMask(const Hyperedge&) const { return 1; }
  void ApplyUpdateBatch(size_t thr_id, VertexId v,
                        std::span<const VertexUpdate> batch) {
    for (auto& layer : layers_) layer.ApplyUpdateBatch(thr_id, v, batch);
  }

  /// Linear subtraction of a known edge set from ALL layers (used by the
  /// light-edge recovery of Theorem 15, where the subtracted sets are
  /// deterministic functions of the input graph).
  void RemoveHyperedges(const std::vector<Hyperedge>& edges);

  /// Extract F_1 u ... u F_k where F_i spans G - F_1 - ... - F_{i-1}.
  /// The extraction works on copies; the sketch itself is unchanged. When
  /// `stats` is non-null it receives the extraction-engine counters summed
  /// over the k layer decodes, in layer order.
  Result<Hypergraph> Extract(ExtractStats* stats = nullptr) const;

  /// The unified non-destructive query: the decoded skeleton plus the
  /// extraction counters in one value (wraps Extract()).
  QueryResult<Hypergraph> Query() const;

  /// Serving hook (src/serve/): true iff any layer's measurement state
  /// changed since construction / the last Clear().
  bool SnapshotDirty() const;

  size_t MemoryBytes() const;

  /// Bit-identity of all per-layer states (for the determinism suite).
  bool StateEquals(const KSkeletonSketch& other) const;

  /// Cell-wise field addition of another sketch of the SAME measurement
  /// (equal seed, n, max_rank, k, and params). Mismatches return
  /// InvalidArgument and leave the state untouched.
  Status MergeFrom(const KSkeletonSketch& other);

  /// A sketch of the SAME measurement with zero state: the sharded-merge
  /// private clone. Layers allocate zeroed arenas directly -- the parent's
  /// cells are never copied.
  KSkeletonSketch CloneEmpty() const {
    return KSkeletonSketch(*this, CloneEmptyTag{});
  }

  /// Zero every layer (the empty-stream measurement).
  void Clear();

  /// Append one wire frame (wire::FrameType::kKSkeleton) to *out: the
  /// header reconstructs all k layer shapes from the seed; the payload
  /// concatenates the layers' raw cells.
  void Serialize(std::vector<uint8_t>* out) const;

  /// Parse a frame produced by Serialize. Truncation, corruption, and shape
  /// mismatches return Status; never aborts.
  static Result<KSkeletonSketch> Deserialize(std::span<const uint8_t> bytes);

  /// Measured serialized-frame size in bytes.
  size_t SpaceBytes() const;

  /// Raw layer cells for COMPOSITE frames (the sparsifier's levels pack
  /// many skeleton sketches into one frame).
  void AppendCells(wire::Writer* w) const;
  Status ReadCells(wire::Reader* r);

 private:
  KSkeletonSketch(const KSkeletonSketch& other, CloneEmptyTag);

  size_t n_;
  size_t k_;
  uint64_t seed_;
  Params params_;
  std::vector<SpanningForestSketch> layers_;
};

}  // namespace gms

#endif  // GMS_CONNECTIVITY_K_SKELETON_H_
