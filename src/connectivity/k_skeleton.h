// k-skeleton sketches (Definition 11, Theorem 14): k independent
// spanning-graph sketches A^1..A^k. F_i is extracted as a spanning graph of
// G - F_1 - ... - F_{i-1}, obtained by LINEARLY subtracting the already-
// extracted layers from sketch A^i -- the independence of the k sketches is
// what makes the union-bound argument valid (Section 4.2 discusses at
// length why reusing one sketch adaptively is unsound; see
// tests/adaptive_reuse_test.cc for an empirical demonstration).
#ifndef GMS_CONNECTIVITY_K_SKELETON_H_
#define GMS_CONNECTIVITY_K_SKELETON_H_

#include <cstdint>
#include <span>
#include <vector>

#include "connectivity/spanning_forest_sketch.h"

namespace gms {

class KSkeletonSketch {
 public:
  /// Sketch from which a k-skeleton of a hypergraph on n vertices (edges of
  /// cardinality <= max_rank) can be extracted.
  KSkeletonSketch(size_t n, size_t max_rank, size_t k, uint64_t seed,
                  const SpanningForestSketch::Params& params =
                      SpanningForestSketch::Params());

  size_t n() const { return n_; }
  size_t k() const { return k_; }

  void Update(const Hyperedge& e, int delta);

  /// As Update with the codec index precomputed (all k layers share one
  /// (n, max_rank) domain, so containers of skeleton sketches -- e.g. the
  /// sparsifier's levels -- encode each update exactly once).
  void UpdateEncoded(const Hyperedge& e, u128 index, int delta);

  /// As UpdateEncoded with the coordinate fully prepared (fold + exponent
  /// are shape-independent, so one preparation serves every layer).
  void UpdatePrepared(const Hyperedge& e, const PreparedCoord& pc, int delta);

  /// Batched ingestion: encodes each update once and shards the k
  /// independent layers across params.threads workers (bit-identical to
  /// the serial path; each layer is owned by one worker).
  void Process(std::span<const StreamUpdate> updates);
  void Process(const DynamicStream& stream);

  /// Linear subtraction of a known edge set from ALL layers (used by the
  /// light-edge recovery of Theorem 15, where the subtracted sets are
  /// deterministic functions of the input graph).
  void RemoveHyperedges(const std::vector<Hyperedge>& edges);

  /// Extract F_1 u ... u F_k where F_i spans G - F_1 - ... - F_{i-1}.
  /// The extraction works on copies; the sketch itself is unchanged.
  Result<Hypergraph> Extract() const;

  size_t MemoryBytes() const;

  /// Bit-identity of all per-layer states (for the determinism suite).
  bool StateEquals(const KSkeletonSketch& other) const;

 private:
  size_t n_;
  size_t k_;
  size_t threads_;
  std::vector<SpanningForestSketch> layers_;
};

}  // namespace gms

#endif  // GMS_CONNECTIVITY_K_SKELETON_H_
