#include "exact/gomory_hu.h"

#include <algorithm>

#include "exact/dinic.h"
#include "util/check.h"

namespace gms {

GomoryHuTree::GomoryHuTree(const Graph& g) {
  size_t n = g.NumVertices();
  parent_.assign(n, 0);
  cut_to_parent_.assign(n, 0);
  depth_.assign(n, 0);
  if (n == 0) return;
  auto edges = g.Edges();
  // Gusfield: process vertices 1..n-1; flow against the current parent,
  // then re-hang same-side vertices with larger index.
  for (VertexId i = 1; i < n; ++i) {
    VertexId p = parent_[i];
    Dinic net(n);
    for (const Edge& e : edges) net.AddUndirected(e.u(), e.v(), 1);
    int64_t flow = net.MaxFlow(i, p);
    cut_to_parent_[i] = flow;
    std::vector<bool> side = net.MinCutSourceSide(i);
    for (VertexId j = i + 1; j < n; ++j) {
      if (side[j] && parent_[j] == p) parent_[j] = i;
    }
    // Gusfield's fix-up: if the cut also separates p from ITS parent, hang
    // i above p instead.
    if (p != 0 && side[parent_[p]]) {
      parent_[i] = parent_[p];
      cut_to_parent_[i] = cut_to_parent_[p];
      parent_[p] = i;
      cut_to_parent_[p] = flow;
    }
  }
  // Depths for path-min queries (fix-ups break index monotonicity, so
  // resolve chains iteratively).
  std::vector<bool> done(n, false);
  done[0] = true;
  for (VertexId v = 0; v < n; ++v) {
    // Walk up to a resolved ancestor, then unwind.
    std::vector<VertexId> chain;
    VertexId x = v;
    while (!done[x]) {
      chain.push_back(x);
      x = parent_[x];
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      depth_[*it] = depth_[parent_[*it]] + 1;
      done[*it] = true;
    }
  }
}

int64_t GomoryHuTree::MinCut(VertexId u, VertexId v) const {
  GMS_CHECK(u < n() && v < n() && u != v);
  int64_t best = Dinic::kInf;
  VertexId a = u, b = v;
  while (a != b) {
    if (depth_[a] < depth_[b]) std::swap(a, b);
    best = std::min(best, cut_to_parent_[a]);
    a = parent_[a];
  }
  return best;
}

std::vector<GomoryHuTree::TreeEdge> GomoryHuTree::Edges() const {
  std::vector<TreeEdge> out;
  for (VertexId v = 1; v < n(); ++v) {
    out.push_back({parent_[v], v, cut_to_parent_[v]});
  }
  return out;
}

}  // namespace gms
