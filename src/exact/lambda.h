// lambda_e(G): the minimum cardinality of a cut that includes (hyper)edge e
// (Section 2 of the paper). For a graph edge {u,v} this is the minimum u-v
// edge cut; for a hyperedge it is the minimum s-t hyperedge cut over pairs
// of its vertices, computed on the Lawler expansion network.
#ifndef GMS_EXACT_LAMBDA_H_
#define GMS_EXACT_LAMBDA_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace gms {

/// Minimum u-v edge cut of an unweighted graph (u != v). `limit` caps the
/// computed value (pass -1 for exact).
int64_t MinEdgeCutBetween(const Graph& g, VertexId u, VertexId v,
                          int64_t limit = -1);

/// Minimum s-t hyperedge cut of an unweighted hypergraph via Lawler's
/// node-expansion network.
int64_t MinHyperedgeCutBetween(const Hypergraph& g, VertexId s, VertexId t,
                               int64_t limit = -1);

/// lambda_e for a graph edge: e must be present in g.
int64_t EdgeLambda(const Graph& g, const Edge& e, int64_t limit = -1);

/// lambda_e for a hyperedge: e must be present in g. Uses |e|-1 max-flow
/// queries (a cut containing e separates e's minimum vertex from some other
/// vertex of e, and vice versa).
int64_t HyperedgeLambda(const Hypergraph& g, const Hyperedge& e,
                        int64_t limit = -1);

}  // namespace gms

#endif  // GMS_EXACT_LAMBDA_H_
