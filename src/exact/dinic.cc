#include "exact/dinic.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace gms {

Dinic::Dinic(size_t num_nodes) : head_(num_nodes) {}

size_t Dinic::AddArc(uint32_t u, uint32_t v, int64_t capacity) {
  GMS_DCHECK(u < head_.size() && v < head_.size());
  size_t id = arcs_.size();
  head_[u].push_back(static_cast<uint32_t>(id));
  arcs_.push_back({v, capacity});
  head_[v].push_back(static_cast<uint32_t>(id + 1));
  arcs_.push_back({u, 0});
  return id;
}

void Dinic::AddUndirected(uint32_t u, uint32_t v, int64_t capacity) {
  size_t id = AddArc(u, v, capacity);
  arcs_[id + 1].cap = capacity;  // make the reverse arc a real arc
}

bool Dinic::Bfs(uint32_t s, uint32_t t) {
  level_.assign(head_.size(), -1);
  std::queue<uint32_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    uint32_t v = q.front();
    q.pop();
    for (uint32_t id : head_[v]) {
      const ArcRec& a = arcs_[id];
      if (a.cap > 0 && level_[a.to] < 0) {
        level_[a.to] = level_[v] + 1;
        q.push(a.to);
      }
    }
  }
  return level_[t] >= 0;
}

int64_t Dinic::Dfs(uint32_t v, uint32_t t, int64_t pushed) {
  if (v == t) return pushed;
  for (uint32_t& i = iter_[v]; i < head_[v].size(); ++i) {
    uint32_t id = head_[v][i];
    ArcRec& a = arcs_[id];
    if (a.cap <= 0 || level_[a.to] != level_[v] + 1) continue;
    int64_t got = Dfs(a.to, t, std::min(pushed, a.cap));
    if (got > 0) {
      a.cap -= got;
      arcs_[id ^ 1].cap += got;
      return got;
    }
  }
  level_[v] = -1;  // dead end
  return 0;
}

int64_t Dinic::MaxFlow(uint32_t s, uint32_t t, int64_t limit) {
  GMS_CHECK(s != t);
  int64_t flow = 0;
  while (flow < limit && Bfs(s, t)) {
    iter_.assign(head_.size(), 0);
    while (flow < limit) {
      int64_t got = Dfs(s, t, limit - flow);
      if (got == 0) break;
      flow += got;
    }
  }
  return flow;
}

std::vector<bool> Dinic::MinCutSourceSide(uint32_t s) const {
  std::vector<bool> seen(head_.size(), false);
  std::queue<uint32_t> q;
  seen[s] = true;
  q.push(s);
  while (!q.empty()) {
    uint32_t v = q.front();
    q.pop();
    for (uint32_t id : head_[v]) {
      const ArcRec& a = arcs_[id];
      if (a.cap > 0 && !seen[a.to]) {
        seen[a.to] = true;
        q.push(a.to);
      }
    }
  }
  return seen;
}

}  // namespace gms
