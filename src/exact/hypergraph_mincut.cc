#include "exact/hypergraph_mincut.h"

#include <algorithm>

#include "util/check.h"

namespace gms {

namespace {

// Queyranne key contribution of a hyperedge with |e| = s, |e ∩ A| = c and
// weight w, towards a candidate vertex v in e \ A:
//   key(v) = f({v}) + f(A) - f(A ∪ {v}) summed over incident edges, where
// f is the hypergraph cut function. Per edge this works out to
//   0   if c == 0,
//   w   if 1 <= c <= s - 2,
//   2w  if c == s - 1.
double KeyVal(size_t c, size_t s, double w) {
  if (c == 0) return 0;
  if (c + 1 == s) return 2 * w;
  return w;
}

}  // namespace

HypergraphCut HypergraphMinCut(size_t n, const std::vector<Hyperedge>& edges,
                               const std::vector<double>& weights) {
  GMS_CHECK(n >= 2);
  GMS_CHECK(edges.size() == weights.size());
  // Contraction state: each original vertex points at a supernode id.
  std::vector<uint32_t> super(n);
  for (size_t v = 0; v < n; ++v) super[v] = static_cast<uint32_t>(v);
  std::vector<std::vector<uint32_t>> merged(n);
  for (size_t v = 0; v < n; ++v) merged[v] = {static_cast<uint32_t>(v)};
  std::vector<uint32_t> alive(n);
  for (size_t v = 0; v < n; ++v) alive[v] = static_cast<uint32_t>(v);

  HypergraphCut best;
  best.value = -1;

  while (alive.size() > 1) {
    // Project edges onto current supernodes; drop collapsed edges.
    std::vector<std::vector<uint32_t>> pe;   // projected edges
    std::vector<double> pw;
    std::vector<std::vector<uint32_t>> incident(n);
    for (size_t i = 0; i < edges.size(); ++i) {
      std::vector<uint32_t> vs;
      for (VertexId v : edges[i]) vs.push_back(super[v]);
      std::sort(vs.begin(), vs.end());
      vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
      if (vs.size() < 2) continue;
      uint32_t id = static_cast<uint32_t>(pe.size());
      for (uint32_t v : vs) incident[v].push_back(id);
      pe.push_back(std::move(vs));
      pw.push_back(weights[i]);
    }

    // One maximum-adjacency (pendant-pair) phase.
    std::vector<double> key(n, 0);
    std::vector<bool> in_a(n, false);
    std::vector<uint32_t> cnt(pe.size(), 0);
    uint32_t prev = alive[0], last = alive[0];

    auto absorb = [&](uint32_t sel) {
      in_a[sel] = true;
      for (uint32_t id : incident[sel]) {
        size_t c = cnt[id], s = pe[id].size();
        for (uint32_t u : pe[id]) {
          if (!in_a[u]) key[u] += KeyVal(c + 1, s, pw[id]) - KeyVal(c, s, pw[id]);
        }
        cnt[id] = static_cast<uint32_t>(c + 1);
      }
    };

    absorb(last);
    for (size_t step = 1; step < alive.size(); ++step) {
      uint32_t sel = UINT32_MAX;
      for (uint32_t v : alive) {
        if (!in_a[v] && (sel == UINT32_MAX || key[v] > key[sel])) sel = v;
      }
      prev = last;
      last = sel;
      absorb(sel);
    }
    // Cut of the phase: delta({last}) in the contracted hypergraph.
    double cut_of_phase = 0;
    for (uint32_t id : incident[last]) cut_of_phase += pw[id];
    if (best.value < 0 || cut_of_phase < best.value) {
      best.value = cut_of_phase;
      best.side.assign(n, false);
      for (uint32_t orig : merged[last]) best.side[orig] = true;
    }
    // Contract last into prev.
    for (uint32_t orig : merged[last]) super[orig] = prev;
    merged[prev].insert(merged[prev].end(), merged[last].begin(),
                        merged[last].end());
    alive.erase(std::find(alive.begin(), alive.end(), last));
  }
  // side is indexed by original vertex id already (size n).
  best.side.resize(n);
  return best;
}

HypergraphCut HypergraphMinCut(const Hypergraph& g) {
  std::vector<double> w(g.NumEdges(), 1.0);
  return HypergraphMinCut(g.NumVertices(), g.Edges(), w);
}

HypergraphCut HypergraphMinCutBrute(size_t n,
                                    const std::vector<Hyperedge>& edges,
                                    const std::vector<double>& weights) {
  GMS_CHECK(n >= 2 && n <= 24);
  HypergraphCut best;
  best.value = -1;
  for (uint64_t mask = 1; mask < (1ULL << (n - 1)); ++mask) {
    // Vertex n-1 always on the 0-side: enumerate each cut once.
    double value = 0;
    for (size_t i = 0; i < edges.size(); ++i) {
      bool any_in = false, any_out = false;
      for (VertexId v : edges[i]) {
        bool in = v < n - 1 && ((mask >> v) & 1);
        (in ? any_in : any_out) = true;
      }
      if (any_in && any_out) value += weights[i];
    }
    if (best.value < 0 || value < best.value) {
      best.value = value;
      best.side.assign(n, false);
      for (size_t v = 0; v + 1 < n; ++v) best.side[v] = (mask >> v) & 1;
    }
  }
  return best;
}

HypergraphCut HypergraphMinCutBrute(const Hypergraph& g) {
  std::vector<double> w(g.NumEdges(), 1.0);
  return HypergraphMinCutBrute(g.NumVertices(), g.Edges(), w);
}

}  // namespace gms
