// Offline computation of the paper's "light edge" sets (Section 4.2.1) and
// of Benczur-Karger edge strengths (Lemma 16).
//
//   E_i = { e in E : lambda_e(G \ (E_1 u ... u E_{i-1})) <= k },
//   light_k(G) = union of the E_i.
//
// Two independent implementations are provided for cross-validation:
//   * the definition, via capped max-flow lambda_e computations (works for
//     graphs and hypergraphs), and
//   * for graphs, via the strength decomposition and Lemma 16's identity
//     light_k(G) = { e : k_e <= k }.
#ifndef GMS_EXACT_STRENGTH_H_
#define GMS_EXACT_STRENGTH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace gms {

/// The peeling layers E_1, E_2, ... (each nonempty) and their union.
struct LightDecomposition {
  std::vector<std::vector<Hyperedge>> layers;
  Hypergraph light;     // union of the layers, as a hypergraph on n vertices
  Hypergraph residual;  // G minus the light edges
};

/// One peeling layer: { e in g : lambda_e(g) <= k }. Uses a Gomory-Hu tree
/// when g is 2-uniform (n-1 flows total) and capped per-edge max-flows on
/// genuine hypergraphs.
std::vector<Hyperedge> LightLayer(const Hypergraph& g, size_t k);

/// Definition-based light_k computation (graphs: lift via
/// Hypergraph::FromGraph). O(n) rounds of LightLayer.
LightDecomposition OfflineLightEdges(const Hypergraph& g, size_t k);

/// Benczur-Karger strength k_e for every edge of a graph: the maximum k
/// such that some vertex-induced subgraph containing e is k-edge-connected.
/// Computed by recursive minimum-cut decomposition.
std::unordered_map<Edge, int64_t, EdgeHasher> GraphStrengths(const Graph& g);

/// { e : k_e <= k } via GraphStrengths (Lemma 16 says this equals
/// OfflineLightEdges(g, k).light for graphs).
std::vector<Edge> LightEdgesViaStrength(const Graph& g, size_t k);

}  // namespace gms

#endif  // GMS_EXACT_STRENGTH_H_
