#include "exact/degeneracy.h"

#include <algorithm>
#include <numeric>

#include "exact/hypergraph_mincut.h"
#include "exact/strength.h"
#include "util/check.h"

namespace gms {

size_t Degeneracy(const Hypergraph& g) {
  size_t n = g.NumVertices();
  std::vector<bool> vertex_alive(n, true);
  std::vector<bool> edge_alive(g.NumEdges(), true);
  std::vector<size_t> degree(n, 0);
  for (VertexId v = 0; v < n; ++v) degree[v] = g.Degree(v);
  size_t degeneracy = 0;
  for (size_t removed = 0; removed < n; ++removed) {
    // Min-degree alive vertex.
    VertexId best = 0;
    bool found = false;
    for (VertexId v = 0; v < n; ++v) {
      if (vertex_alive[v] && (!found || degree[v] < degree[best])) {
        best = v;
        found = true;
      }
    }
    GMS_CHECK(found);
    degeneracy = std::max(degeneracy, degree[best]);
    vertex_alive[best] = false;
    for (uint32_t idx : g.IncidentIndices(best)) {
      if (!edge_alive[idx]) continue;
      edge_alive[idx] = false;
      for (VertexId u : g.Edges()[idx]) {
        if (vertex_alive[u]) --degree[u];
      }
    }
  }
  return degeneracy;
}

size_t Degeneracy(const Graph& g) { return Degeneracy(Hypergraph::FromGraph(g)); }

bool IsDDegenerate(const Hypergraph& g, size_t d) { return Degeneracy(g) <= d; }
bool IsDDegenerate(const Graph& g, size_t d) { return Degeneracy(g) <= d; }

size_t CutDegeneracyBrute(const Hypergraph& g) {
  size_t n = g.NumVertices();
  GMS_CHECK_MSG(n >= 2 && n <= 18, "brute force limited to tiny graphs");
  size_t worst = 0;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    if (__builtin_popcountll(mask) < 2) continue;
    // Induced subhypergraph on the masked vertices, compacted.
    std::vector<uint32_t> local(n, UINT32_MAX);
    std::vector<VertexId> verts;
    for (VertexId v = 0; v < n; ++v) {
      if ((mask >> v) & 1) {
        local[v] = static_cast<uint32_t>(verts.size());
        verts.push_back(v);
      }
    }
    std::vector<Hyperedge> edges;
    for (const auto& e : g.Edges()) {
      bool inside = true;
      for (VertexId v : e) inside &= ((mask >> v) & 1) != 0;
      if (!inside) continue;
      std::vector<VertexId> mapped;
      for (VertexId v : e) mapped.push_back(local[v]);
      edges.push_back(Hyperedge(std::move(mapped)));
    }
    size_t cut;
    if (edges.empty()) {
      cut = 0;
    } else {
      std::vector<double> w(edges.size(), 1.0);
      cut = static_cast<size_t>(
          HypergraphMinCut(verts.size(), edges, w).value + 0.5);
    }
    worst = std::max(worst, cut);
  }
  return worst;
}

size_t CutDegeneracyBrute(const Graph& g) {
  return CutDegeneracyBrute(Hypergraph::FromGraph(g));
}

size_t LightCompleteness(const Hypergraph& g) {
  if (g.NumEdges() == 0) return 0;
  size_t max_degree = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  size_t lo = 1, hi = max_degree;
  // light_d is monotone in d (removing edges only lowers lambda_e), so
  // binary search for the smallest d with empty residual.
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (OfflineLightEdges(g, mid).residual.NumEdges() == 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  GMS_CHECK(OfflineLightEdges(g, lo).residual.NumEdges() == 0);
  return lo;
}

}  // namespace gms
