// Cut-evaluation utilities for sparsifier verification (Definition 17,
// Theorems 19/20): compare the weighted cuts of a sparsifier against the
// exact cuts of the original hypergraph, either exhaustively (small n) or
// over a structured sample of cuts.
#ifndef GMS_EXACT_CUT_EVAL_H_
#define GMS_EXACT_CUT_EVAL_H_

#include <cstdint>
#include <vector>

#include "graph/hypergraph.h"

namespace gms {

/// A weighted edge set over the same vertex universe as some hypergraph.
struct WeightedEdgeSet {
  std::vector<Hyperedge> edges;
  std::vector<double> weights;

  size_t size() const { return edges.size(); }
  double TotalWeight() const;
};

/// Weighted value of the cut (S, V\S); a hyperedge counts if it intersects
/// both sides.
double WeightedCutValue(const WeightedEdgeSet& h, const std::vector<bool>& in_s);

struct CutErrorStats {
  double max_rel_error = 0;   // max over cuts of |w(S) - c(S)| / c(S)
  double avg_rel_error = 0;
  size_t cuts_checked = 0;
  size_t zero_mismatches = 0; // cuts where exactly one side is 0
};

/// Exhaustive comparison over all 2^(n-1) - 1 cuts (n <= 22).
CutErrorStats CompareAllCuts(const Hypergraph& original,
                             const WeightedEdgeSet& sparsifier);

/// Sampled comparison: all singleton cuts plus `samples` uniform random
/// bipartitions (seeded).
CutErrorStats CompareSampledCuts(const Hypergraph& original,
                                 const WeightedEdgeSet& sparsifier,
                                 size_t samples, uint64_t seed);

}  // namespace gms

#endif  // GMS_EXACT_CUT_EVAL_H_
