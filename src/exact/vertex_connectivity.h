// Exact vertex connectivity: node-split max-flow for pairwise vertex
// connectivity (Even-Tarjan), the global kappa(G) loop, a k-connectivity
// decision procedure with capped flows, and an exponential brute force used
// to validate everything on small instances. These implement the
// "run any vertex connectivity algorithm on H in postprocessing" step of
// Theorem 8 and serve as the ground truth for Section 3's sketches.
#ifndef GMS_EXACT_VERTEX_CONNECTIVITY_H_
#define GMS_EXACT_VERTEX_CONNECTIVITY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace gms {

/// Maximum number of vertex-disjoint u-v paths for NON-adjacent u, v
/// (= the minimum u-v vertex cut, by Menger). Flows are capped at `limit`
/// when given (the return value is then min(true value, limit)).
int64_t VertexDisjointPaths(const Graph& g, VertexId u, VertexId v,
                            int64_t limit = -1);

/// Global vertex connectivity kappa(G). Complete graphs give n-1;
/// disconnected graphs give 0. O(n) max-flow computations via the
/// Even-Tarjan pair schedule.
size_t VertexConnectivity(const Graph& g);

/// Decision version: kappa(G) >= k? Flows capped at k, so much faster than
/// computing kappa exactly for small k.
bool IsKVertexConnected(const Graph& g, size_t k);

/// A minimum vertex cut (empty optional when the graph is complete, which
/// has no vertex cut). For disconnected graphs returns an empty vector.
std::optional<std::vector<VertexId>> MinimumVertexCut(const Graph& g);

/// Brute force over all vertex subsets of size < n - 1; exponential, for
/// cross-validation on tiny graphs (n <= ~18).
size_t VertexConnectivityBrute(const Graph& g);

/// Hypergraph vertex connectivity under induced-subhypergraph semantics
/// (removing S also removes every hyperedge touching S, as in Section 3's
/// vertex subsampling). Computed by exhaustive search: under these
/// semantics a removed vertex invalidates whole hyperedges, which breaks
/// the max-flow formulation (the minimum "hitting" separator is a colored
/// cut), so no polynomial exact routine is provided -- the sketch-side
/// query (Theorem 4's hypergraph analogue) never needs one.
size_t VertexConnectivityBrute(const Hypergraph& g);

}  // namespace gms

#endif  // GMS_EXACT_VERTEX_CONNECTIVITY_H_
