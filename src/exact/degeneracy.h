// Degeneracy and cut-degeneracy (Definition 9, Lemma 10).
//
// d-degenerate: every induced subhypergraph has a vertex of degree <= d
// (degree = number of incident hyperedges); computed exactly by min-degree
// peeling. d-cut-degenerate: every induced subhypergraph has a cut of size
// <= d; strictly weaker (Lemma 10). Exact cut-degeneracy is computed by
// exhaustive search over induced subgraphs (tiny n only); the polynomial
// quantity min{ d : light_d(G) = E } is exposed as LightCompleteness and is
// an upper bound on reconstructability via Theorem 15.
#ifndef GMS_EXACT_DEGENERACY_H_
#define GMS_EXACT_DEGENERACY_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/hypergraph.h"

namespace gms {

/// Max over the peeling order of the min degree: the exact degeneracy.
size_t Degeneracy(const Hypergraph& g);
size_t Degeneracy(const Graph& g);

bool IsDDegenerate(const Hypergraph& g, size_t d);
bool IsDDegenerate(const Graph& g, size_t d);

/// Exact cut-degeneracy by enumerating all vertex-induced subhypergraphs
/// (n <= 18): max over subsets S with >= 2 vertices of the min cut of G[S].
size_t CutDegeneracyBrute(const Hypergraph& g);
size_t CutDegeneracyBrute(const Graph& g);

/// Smallest d with light_d(G) = E: the exact threshold at which Theorem
/// 15's sketch reconstructs all of G. Since d-cut-degeneracy implies
/// light_d(G) = E (Section 4.2.1), LightCompleteness(G) <= cut-degeneracy,
/// and it is computable in polynomial time.
size_t LightCompleteness(const Hypergraph& g);

}  // namespace gms

#endif  // GMS_EXACT_DEGENERACY_H_
