// Gomory-Hu tree (Gusfield's variant): n-1 max-flows yield a weighted tree
// on V whose path-minimum between u and v equals the minimum u-v edge cut
// in G. Used as (a) a fast oracle for lambda_e over MANY edges (the
// definition-based light_k peeling queries lambda for every edge every
// round) and (b) an independent cross-check of the strength decomposition.
#ifndef GMS_EXACT_GOMORY_HU_H_
#define GMS_EXACT_GOMORY_HU_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gms {

class GomoryHuTree {
 public:
  /// Build from an unweighted graph with n-1 Dinic computations
  /// (Gusfield: no contractions needed).
  explicit GomoryHuTree(const Graph& g);

  /// Minimum u-v edge cut value (path minimum in the tree); 0 when u and v
  /// are disconnected.
  int64_t MinCut(VertexId u, VertexId v) const;

  /// lambda_e for an edge {u, v} of the underlying graph: identical to
  /// MinCut(u, v) (any cut separating the endpoints contains the edge).
  int64_t Lambda(const Edge& e) const { return MinCut(e.u(), e.v()); }

  /// Tree edges as (parent, child, cut value); parent[root 0] is absent.
  struct TreeEdge {
    VertexId parent;
    VertexId child;
    int64_t cut;
  };
  std::vector<TreeEdge> Edges() const;

  size_t n() const { return parent_.size(); }

 private:
  std::vector<VertexId> parent_;
  std::vector<int64_t> cut_to_parent_;
  // For O(depth) path-min queries (n is small in our uses, no LCA needed).
  std::vector<uint32_t> depth_;
};

}  // namespace gms

#endif  // GMS_EXACT_GOMORY_HU_H_
