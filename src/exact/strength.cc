#include "exact/strength.h"

#include <algorithm>

#include "exact/gomory_hu.h"
#include "exact/lambda.h"
#include "exact/stoer_wagner.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace gms {

std::vector<Hyperedge> LightLayer(const Hypergraph& cur, size_t k) {
  std::vector<Hyperedge> layer;
  if (cur.Rank() <= 2) {
    // Graph fast path: one Gomory-Hu tree answers lambda_e for every edge
    // (n-1 max-flows total instead of one per edge).
    GomoryHuTree tree(cur.ToGraph());
    for (const auto& e : cur.Edges()) {
      if (tree.Lambda(e.AsEdge()) <= static_cast<int64_t>(k)) {
        layer.push_back(e);
      }
    }
    return layer;
  }
  for (const auto& e : cur.Edges()) {
    if (HyperedgeLambda(cur, e, static_cast<int64_t>(k) + 1) <=
        static_cast<int64_t>(k)) {
      layer.push_back(e);
    }
  }
  return layer;
}

LightDecomposition OfflineLightEdges(const Hypergraph& g, size_t k) {
  LightDecomposition out;
  out.light = Hypergraph(g.NumVertices());
  Hypergraph cur = g;
  while (cur.NumEdges() > 0) {
    std::vector<Hyperedge> layer = LightLayer(cur, k);
    if (layer.empty()) break;
    for (const auto& e : layer) {
      cur.RemoveEdge(e);
      out.light.AddEdge(e);
    }
    out.layers.push_back(std::move(layer));
  }
  out.residual = std::move(cur);
  return out;
}

namespace {

void StrengthRec(const Graph& g, std::vector<VertexId> vertices,
                 int64_t floor_value,
                 std::unordered_map<Edge, int64_t, EdgeHasher>* strengths) {
  while (true) {
    if (vertices.size() < 2) return;
    // Split into connected components of the induced subgraph.
    std::vector<bool> in_set(g.NumVertices(), false);
    for (VertexId v : vertices) in_set[v] = true;
    std::vector<VertexId> removed;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (!in_set[v]) removed.push_back(v);
    }
    Graph induced = g.InducedExcluding(removed);
    auto comp = ConnectedComponents(induced);
    // Count distinct components among our vertices.
    std::unordered_map<uint32_t, std::vector<VertexId>> groups;
    for (VertexId v : vertices) groups[comp[v]].push_back(v);
    if (groups.size() > 1) {
      for (auto& [id, verts] : groups) {
        StrengthRec(g, std::move(verts), floor_value, strengths);
      }
      return;
    }
    if (induced.NumEdges() == 0) return;

    // Connected: minimum cut of the induced subgraph on a compacted index
    // space.
    size_t m = vertices.size();
    std::unordered_map<VertexId, uint32_t> local;
    for (size_t i = 0; i < m; ++i) local[vertices[i]] = static_cast<uint32_t>(i);
    std::vector<std::vector<int64_t>> w(m, std::vector<int64_t>(m, 0));
    for (const Edge& e : induced.Edges()) {
      uint32_t a = local[e.u()], b = local[e.v()];
      w[a][b] = 1;
      w[b][a] = 1;
    }
    GlobalMinCut cut = StoerWagner(w);
    int64_t fl = std::max(floor_value, cut.value);
    std::vector<VertexId> side_a, side_b;
    for (size_t i = 0; i < m; ++i) {
      (cut.side[i] ? side_a : side_b).push_back(vertices[i]);
    }
    for (const Edge& e : induced.Edges()) {
      bool ua = cut.side[local[e.u()]];
      bool va = cut.side[local[e.v()]];
      if (ua != va) {
        int64_t& s = (*strengths)[e];
        s = std::max(s, fl);
      }
    }
    // Tail-recurse into the larger side to bound stack depth.
    if (side_a.size() > side_b.size()) std::swap(side_a, side_b);
    StrengthRec(g, std::move(side_a), fl, strengths);
    vertices = std::move(side_b);
    floor_value = fl;
  }
}

}  // namespace

std::unordered_map<Edge, int64_t, EdgeHasher> GraphStrengths(const Graph& g) {
  std::unordered_map<Edge, int64_t, EdgeHasher> strengths;
  std::vector<VertexId> all(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) all[v] = v;
  StrengthRec(g, std::move(all), 0, &strengths);
  GMS_CHECK_MSG(strengths.size() == g.NumEdges(),
                "every edge must receive a strength");
  return strengths;
}

std::vector<Edge> LightEdgesViaStrength(const Graph& g, size_t k) {
  auto strengths = GraphStrengths(g);
  std::vector<Edge> out;
  for (const auto& [e, s] : strengths) {
    if (s <= static_cast<int64_t>(k)) out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace gms
