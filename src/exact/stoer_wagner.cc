#include "exact/stoer_wagner.h"

#include <algorithm>

#include "util/check.h"

namespace gms {

GlobalMinCut StoerWagner(const std::vector<std::vector<int64_t>>& weight) {
  size_t n = weight.size();
  GMS_CHECK_MSG(n >= 2, "min cut needs >= 2 vertices");
  std::vector<std::vector<int64_t>> w = weight;
  // merged[i]: original vertices currently contracted into supernode i.
  std::vector<std::vector<uint32_t>> merged(n);
  for (size_t i = 0; i < n; ++i) merged[i] = {static_cast<uint32_t>(i)};
  std::vector<uint32_t> alive(n);
  for (size_t i = 0; i < n; ++i) alive[i] = static_cast<uint32_t>(i);

  GlobalMinCut best;
  best.value = -1;

  while (alive.size() > 1) {
    // One maximum-adjacency phase over the alive supernodes.
    std::vector<int64_t> key(n, 0);
    std::vector<bool> in_a(n, false);
    uint32_t prev = alive[0], last = alive[0];
    in_a[last] = true;
    for (uint32_t v : alive) {
      if (v != last) key[v] = w[last][v];
    }
    for (size_t step = 1; step < alive.size(); ++step) {
      uint32_t sel = UINT32_MAX;
      for (uint32_t v : alive) {
        if (!in_a[v] && (sel == UINT32_MAX || key[v] > key[sel])) sel = v;
      }
      in_a[sel] = true;
      prev = last;
      last = sel;
      for (uint32_t v : alive) {
        if (!in_a[v]) key[v] += w[sel][v];
      }
    }
    int64_t cut_of_phase = key[last];
    if (best.value < 0 || cut_of_phase < best.value) {
      best.value = cut_of_phase;
      best.side.assign(n, false);
      for (uint32_t orig : merged[last]) best.side[orig] = true;
    }
    // Contract last into prev.
    for (uint32_t v : alive) {
      if (v != last && v != prev) {
        w[prev][v] += w[last][v];
        w[v][prev] = w[prev][v];
      }
    }
    merged[prev].insert(merged[prev].end(), merged[last].begin(),
                        merged[last].end());
    alive.erase(std::find(alive.begin(), alive.end(), last));
  }
  return best;
}

GlobalMinCut StoerWagner(const Graph& g) {
  size_t n = g.NumVertices();
  std::vector<std::vector<int64_t>> w(n, std::vector<int64_t>(n, 0));
  for (const Edge& e : g.Edges()) {
    w[e.u()][e.v()] = 1;
    w[e.v()][e.u()] = 1;
  }
  return StoerWagner(w);
}

size_t EdgeConnectivity(const Graph& g) {
  if (g.NumVertices() <= 1) return 0;
  return static_cast<size_t>(StoerWagner(g).value);
}

}  // namespace gms
