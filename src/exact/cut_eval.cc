#include "exact/cut_eval.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace gms {

double WeightedEdgeSet::TotalWeight() const {
  double t = 0;
  for (double w : weights) t += w;
  return t;
}

double WeightedCutValue(const WeightedEdgeSet& h,
                        const std::vector<bool>& in_s) {
  GMS_CHECK(h.edges.size() == h.weights.size());
  double value = 0;
  for (size_t i = 0; i < h.edges.size(); ++i) {
    bool any_in = false, any_out = false;
    for (VertexId v : h.edges[i]) {
      (in_s[v] ? any_in : any_out) = true;
      if (any_in && any_out) break;
    }
    if (any_in && any_out) value += h.weights[i];
  }
  return value;
}

namespace {

void Accumulate(const Hypergraph& original, const WeightedEdgeSet& sparsifier,
                const std::vector<bool>& in_s, CutErrorStats* stats,
                double* rel_sum) {
  double exact = static_cast<double>(original.CutSize(in_s));
  double approx = WeightedCutValue(sparsifier, in_s);
  ++stats->cuts_checked;
  if (exact == 0 || approx == 0) {
    if ((exact == 0) != (approx == 0)) ++stats->zero_mismatches;
    return;
  }
  double rel = std::abs(approx - exact) / exact;
  stats->max_rel_error = std::max(stats->max_rel_error, rel);
  *rel_sum += rel;
}

}  // namespace

CutErrorStats CompareAllCuts(const Hypergraph& original,
                             const WeightedEdgeSet& sparsifier) {
  size_t n = original.NumVertices();
  GMS_CHECK_MSG(n >= 2 && n <= 22, "exhaustive cut comparison needs n <= 22");
  CutErrorStats stats;
  double rel_sum = 0;
  std::vector<bool> in_s(n, false);
  for (uint64_t mask = 1; mask < (1ULL << (n - 1)); ++mask) {
    for (size_t v = 0; v + 1 < n; ++v) in_s[v] = (mask >> v) & 1;
    in_s[n - 1] = false;
    Accumulate(original, sparsifier, in_s, &stats, &rel_sum);
  }
  if (stats.cuts_checked > 0) {
    stats.avg_rel_error = rel_sum / static_cast<double>(stats.cuts_checked);
  }
  return stats;
}

CutErrorStats CompareSampledCuts(const Hypergraph& original,
                                 const WeightedEdgeSet& sparsifier,
                                 size_t samples, uint64_t seed) {
  size_t n = original.NumVertices();
  GMS_CHECK(n >= 2);
  Rng rng(seed);
  CutErrorStats stats;
  double rel_sum = 0;
  std::vector<bool> in_s(n, false);
  // All singleton cuts first (degree cuts are the classic failure mode).
  for (size_t v = 0; v < n; ++v) {
    std::fill(in_s.begin(), in_s.end(), false);
    in_s[v] = true;
    Accumulate(original, sparsifier, in_s, &stats, &rel_sum);
  }
  // Uniform random bipartitions (rejecting the trivial ones).
  for (size_t t = 0; t < samples; ++t) {
    size_t ones = 0;
    for (size_t v = 0; v < n; ++v) {
      in_s[v] = rng.Bernoulli(0.5);
      ones += in_s[v] ? 1 : 0;
    }
    if (ones == 0 || ones == n) continue;  // skip trivial bipartitions
    Accumulate(original, sparsifier, in_s, &stats, &rel_sum);
  }
  if (stats.cuts_checked > 0) {
    stats.avg_rel_error = rel_sum / static_cast<double>(stats.cuts_checked);
  }
  return stats;
}

}  // namespace gms
