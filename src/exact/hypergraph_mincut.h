// Global minimum cut of a weighted hypergraph via Queyranne's
// pendant-pair algorithm (the hypergraph generalization of Stoer-Wagner,
// cf. Klimmek-Wagner / Mak-Wong). A hyperedge crosses a cut (S, V\S) if it
// intersects both sides and then contributes its weight once -- exactly the
// delta_G(S) of the paper. Includes a 2^(n-1) brute force for validation.
#ifndef GMS_EXACT_HYPERGRAPH_MINCUT_H_
#define GMS_EXACT_HYPERGRAPH_MINCUT_H_

#include <cstdint>
#include <vector>

#include "graph/hypergraph.h"

namespace gms {

struct HypergraphCut {
  double value = 0;
  std::vector<bool> side;  // one shore of an optimal cut
};

/// Weighted global min cut; weights must be >= 0, n >= 2. Disconnected
/// hypergraphs yield value 0.
HypergraphCut HypergraphMinCut(size_t n, const std::vector<Hyperedge>& edges,
                               const std::vector<double>& weights);

/// Unit weights.
HypergraphCut HypergraphMinCut(const Hypergraph& g);

/// Exhaustive enumeration of all 2^(n-1)-1 cuts (n <= 24).
HypergraphCut HypergraphMinCutBrute(size_t n,
                                    const std::vector<Hyperedge>& edges,
                                    const std::vector<double>& weights);
HypergraphCut HypergraphMinCutBrute(const Hypergraph& g);

}  // namespace gms

#endif  // GMS_EXACT_HYPERGRAPH_MINCUT_H_
