// Dinic's max-flow over an explicit directed network with integer
// capacities. The workhorse behind exact vertex connectivity (node-split
// networks), edge connectivity between endpoints (lambda_e), and hypergraph
// s-t cuts (Lawler networks).
#ifndef GMS_EXACT_DINIC_H_
#define GMS_EXACT_DINIC_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace gms {

class Dinic {
 public:
  static constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;

  explicit Dinic(size_t num_nodes);

  /// Adds a directed arc u -> v with the given capacity (residual arc has
  /// capacity 0). Returns the arc id.
  size_t AddArc(uint32_t u, uint32_t v, int64_t capacity);

  /// Adds an undirected unit/weighted edge (both directions capacitated).
  void AddUndirected(uint32_t u, uint32_t v, int64_t capacity);

  /// Max flow from s to t, stopping early once `limit` is reached (pass
  /// kInf for the exact value). The network keeps its residual state, so
  /// call on a fresh instance per query.
  int64_t MaxFlow(uint32_t s, uint32_t t, int64_t limit = kInf);

  /// After MaxFlow: nodes reachable from s in the residual network (the
  /// source side of a minimum cut).
  std::vector<bool> MinCutSourceSide(uint32_t s) const;

  size_t num_nodes() const { return head_.size(); }

 private:
  struct ArcRec {
    uint32_t to;
    int64_t cap;
  };
  bool Bfs(uint32_t s, uint32_t t);
  int64_t Dfs(uint32_t v, uint32_t t, int64_t pushed);

  std::vector<std::vector<uint32_t>> head_;  // node -> arc ids
  std::vector<ArcRec> arcs_;                 // paired: arc ^ 1 is reverse
  std::vector<int> level_;
  std::vector<uint32_t> iter_;
};

}  // namespace gms

#endif  // GMS_EXACT_DINIC_H_
