#include "exact/vertex_connectivity.h"

#include <algorithm>
#include <numeric>

#include "exact/dinic.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace gms {

namespace {

// Node-split flow network: in(v) = 2v, out(v) = 2v+1; unit vertex
// capacities except the terminals, infinite arcs along edges.
Dinic BuildSplitNetwork(const Graph& g, VertexId s, VertexId t) {
  size_t n = g.NumVertices();
  Dinic net(2 * n);
  for (VertexId v = 0; v < n; ++v) {
    int64_t cap = (v == s || v == t) ? Dinic::kInf : 1;
    net.AddArc(2 * v, 2 * v + 1, cap);
  }
  for (const Edge& e : g.Edges()) {
    net.AddArc(2 * e.u() + 1, 2 * e.v(), Dinic::kInf);
    net.AddArc(2 * e.v() + 1, 2 * e.u(), Dinic::kInf);
  }
  return net;
}

}  // namespace

int64_t VertexDisjointPaths(const Graph& g, VertexId u, VertexId v,
                            int64_t limit) {
  GMS_CHECK(u != v);
  GMS_CHECK_MSG(!g.HasEdge(u, v),
                "vertex cut undefined for adjacent endpoints");
  Dinic net = BuildSplitNetwork(g, u, v);
  int64_t cap = limit < 0 ? Dinic::kInf : limit;
  return net.MaxFlow(2 * u + 1, 2 * v, cap);
}

size_t VertexConnectivity(const Graph& g) {
  size_t n = g.NumVertices();
  if (n <= 1) return 0;
  if (!IsConnected(g)) return 0;
  size_t ans = n - 1;
  // Even-Tarjan schedule: pair v_0..v_{ans} against every non-neighbor.
  // Any minimum separator S (|S| = kappa) misses some v_i with i <= kappa,
  // and v_i has a non-neighbor across S, so the loop finds kappa.
  for (VertexId i = 0; i < n && static_cast<size_t>(i) <= ans; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i == j || g.HasEdge(i, j)) continue;
      int64_t paths = VertexDisjointPaths(g, i, j,
                                          static_cast<int64_t>(ans));
      ans = std::min(ans, static_cast<size_t>(paths));
    }
  }
  return ans;
}

bool IsKVertexConnected(const Graph& g, size_t k) {
  size_t n = g.NumVertices();
  if (k == 0) return true;
  if (n < k + 1) return false;
  if (g.MinDegree() < k) {
    // kappa <= delta always; quick reject (also handles disconnected).
    return false;
  }
  for (VertexId i = 0; i < n && static_cast<size_t>(i) <= k; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i == j || g.HasEdge(i, j)) continue;
      if (VertexDisjointPaths(g, i, j, static_cast<int64_t>(k)) <
          static_cast<int64_t>(k)) {
        return false;
      }
    }
  }
  return true;
}

std::optional<std::vector<VertexId>> MinimumVertexCut(const Graph& g) {
  size_t n = g.NumVertices();
  if (n <= 1) return std::nullopt;
  if (!IsConnected(g)) return std::vector<VertexId>{};
  size_t best = n - 1;
  std::optional<std::pair<VertexId, VertexId>> best_pair;
  for (VertexId i = 0; i < n && static_cast<size_t>(i) <= best; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      if (i == j || g.HasEdge(i, j)) continue;
      int64_t paths = VertexDisjointPaths(g, i, j);
      if (!best_pair || static_cast<size_t>(paths) < best) {
        best = std::min(best, static_cast<size_t>(paths));
        best_pair = {i, j};
      }
    }
  }
  if (!best_pair) return std::nullopt;  // complete graph
  // Re-run the winning flow and read the cut off the residual network.
  auto [s, t] = *best_pair;
  Dinic net = BuildSplitNetwork(g, s, t);
  net.MaxFlow(2 * s + 1, 2 * t);
  std::vector<bool> side = net.MinCutSourceSide(2 * s + 1);
  std::vector<VertexId> cut;
  for (VertexId v = 0; v < n; ++v) {
    if (v != s && v != t && side[2 * v] && !side[2 * v + 1]) {
      cut.push_back(v);
    }
  }
  GMS_CHECK_MSG(cut.size() == best, "residual cut size mismatch");
  return cut;
}

namespace {

// Shared subset-odometer search for the smallest disconnecting set.
template <typename G>
size_t BruteForceKappa(const G& g) {
  size_t n = g.NumVertices();
  GMS_CHECK_MSG(n <= 22, "brute force limited to tiny graphs");
  if (n <= 1) return 0;
  if (!IsConnected(g)) return 0;
  for (size_t size = 1; size <= n - 2; ++size) {
    std::vector<VertexId> pick(size);
    std::iota(pick.begin(), pick.end(), 0);
    while (true) {
      if (!IsConnectedExcluding(g, pick)) return size;
      size_t i = size;
      while (i > 0 && pick[i - 1] == n - size + (i - 1)) --i;
      if (i == 0) break;
      ++pick[i - 1];
      for (size_t j = i; j < size; ++j) pick[j] = pick[j - 1] + 1;
    }
  }
  return n - 1;
}

}  // namespace

size_t VertexConnectivityBrute(const Graph& g) { return BruteForceKappa(g); }

size_t VertexConnectivityBrute(const Hypergraph& g) {
  return BruteForceKappa(g);
}

}  // namespace gms
