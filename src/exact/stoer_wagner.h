// Stoer-Wagner global minimum cut for weighted undirected graphs. The
// classic O(n^3) adjacency-matrix implementation; independent of the
// hypergraph min-cut code so the two can cross-validate each other.
#ifndef GMS_EXACT_STOER_WAGNER_H_
#define GMS_EXACT_STOER_WAGNER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gms {

struct GlobalMinCut {
  int64_t value = 0;
  std::vector<bool> side;  // one shore of an optimal cut
};

/// Minimum cut of a weighted graph given as an adjacency matrix (weights
/// must be >= 0). Returns value 0 with an arbitrary separation when the
/// graph is disconnected; requires n >= 2.
GlobalMinCut StoerWagner(const std::vector<std::vector<int64_t>>& weight);

/// Unweighted convenience wrapper (weight 1 per edge).
GlobalMinCut StoerWagner(const Graph& g);

/// Exact edge connectivity (= min cut value) of an unweighted graph.
size_t EdgeConnectivity(const Graph& g);

}  // namespace gms

#endif  // GMS_EXACT_STOER_WAGNER_H_
