#include "exact/lambda.h"

#include <algorithm>

#include "exact/dinic.h"
#include "util/check.h"

namespace gms {

int64_t MinEdgeCutBetween(const Graph& g, VertexId u, VertexId v,
                          int64_t limit) {
  GMS_CHECK(u != v);
  Dinic net(g.NumVertices());
  for (const Edge& e : g.Edges()) net.AddUndirected(e.u(), e.v(), 1);
  return net.MaxFlow(u, v, limit < 0 ? Dinic::kInf : limit);
}

int64_t MinHyperedgeCutBetween(const Hypergraph& g, VertexId s, VertexId t,
                               int64_t limit) {
  GMS_CHECK(s != t);
  // Lawler network: vertex nodes 0..n-1; hyperedge e gets nodes in(e), out(e)
  // with a unit arc in->out; v in e contributes v->in(e) inf, out(e)->v inf.
  size_t n = g.NumVertices();
  size_t m = g.NumEdges();
  Dinic net(n + 2 * m);
  const auto& edges = g.Edges();
  for (size_t i = 0; i < m; ++i) {
    uint32_t ein = static_cast<uint32_t>(n + 2 * i);
    uint32_t eout = ein + 1;
    net.AddArc(ein, eout, 1);
    for (VertexId v : edges[i]) {
      net.AddArc(v, ein, Dinic::kInf);
      net.AddArc(eout, v, Dinic::kInf);
    }
  }
  return net.MaxFlow(s, t, limit < 0 ? Dinic::kInf : limit);
}

int64_t EdgeLambda(const Graph& g, const Edge& e, int64_t limit) {
  GMS_CHECK_MSG(g.HasEdge(e), "lambda_e requires e in G");
  return MinEdgeCutBetween(g, e.u(), e.v(), limit);
}

int64_t HyperedgeLambda(const Hypergraph& g, const Hyperedge& e,
                        int64_t limit) {
  GMS_CHECK_MSG(g.HasEdge(e), "lambda_e requires e in G");
  int64_t best = -1;
  VertexId anchor = e.MinVertex();
  for (VertexId v : e) {
    if (v == anchor) continue;
    int64_t cap = limit;
    if (best >= 0) cap = (limit < 0) ? best : std::min(limit, best);
    int64_t cut = MinHyperedgeCutBetween(g, anchor, v, cap);
    best = best < 0 ? cut : std::min(best, cut);
  }
  GMS_CHECK(best >= 1);  // e itself crosses any separating cut
  return best;
}

}  // namespace gms
